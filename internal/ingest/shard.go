package ingest

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"taxiqueue/internal/clean"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/store"
	"taxiqueue/internal/stream"
)

// ctlOp is a shard control operation. An op is handled after the backlog
// that was queued when the worker picked it up — so a quiescent feed gets
// the old drain-everything semantics, while a sustained producer can delay
// an op by at most one queue depth instead of starving it forever.
type ctlOp uint8

const (
	opFlush      ctlOp = iota // cleaner flush + close every slot + checkpoint
	opFlushUntil              // close slots final as of msg.at
	opCheckpoint              // seal the active WAL segment
	opStop                    // graceful: opFlush then exit
	opAbort                   // crash-test: exit immediately, no drain, no commit
	opDrainUntil              // opFlushUntil minus the durability barrier (benchmarks)
)

type ctlMsg struct {
	op    ctlOp
	at    time.Time
	reply chan error
}

// slabMax bounds the records in one queued slab: large enough that a bulk
// feed batch usually travels as a single channel send, small enough that
// one slab never monopolizes the worker or holds a request's memory alive
// too long in the pool.
const slabMax = 1024

// recSlab is a pooled record slice — the unit of queueing. Accept fills
// one per shard per request (chunked at min(slabMax, QueueDepth)) and the
// worker returns it to the pool after processing.
type recSlab struct {
	recs []mdt.Record
}

var slabPool = sync.Pool{
	New: func() any { return &recSlab{recs: make([]mdt.Record, 0, slabMax)} },
}

func getSlab() *recSlab  { return slabPool.Get().(*recSlab) }
func putSlab(s *recSlab) { s.recs = s.recs[:0]; slabPool.Put(s) }

// recBatch is one queue element: a slab of records plus the enqueue
// instant, so the worker can report queue wait once per batch instead of
// once per record.
type recBatch struct {
	slab *recSlab
	at   time.Time
}

// engineGaugeEvery is how many processed records pass between refreshes of
// the engine-introspection gauges (open slots, tracked taxis) — they are
// O(spots) to read, too hot for every record and plenty fresh at this rate.
const engineGaugeEvery = 256

// shard owns one partition of the fleet: a bounded record queue, a
// streaming cleaner, a segmented WAL and an online engine. Only the
// shard's worker goroutine touches the cleaner/engine/WAL; everything the
// rest of the service reads is an atomic registry collector.
type shard struct {
	id  int
	svc *Service
	ch  chan recBatch
	ctl chan ctlMsg

	// qLen counts the records queued (not slabs): the unit QueueDepth and
	// the backpressure policies are defined over. Producers reserve space
	// here before sending; the worker releases it when it picks a batch up.
	qLen atomic.Int64
	// space wakes one blocked producer after the worker frees capacity; a
	// buffered token so a release racing a fresh waiter is never lost.
	space chan struct{}

	cleaner *clean.Streamer
	engine  *stream.Live
	wal     *store.WAL // nil when durability is off
	walDir  string

	// tails enforces the per-taxi time-order rule uniformly: it applies
	// before the WAL *and* when durability is off, so both modes reject the
	// same records and serve identical labels from identical input. The
	// granularity is whole seconds — exactly the store's Append invariant,
	// so sub-second jitter (e.g. the RFC3339 JSON wire truncation) passes.
	//
	// Each tail also keeps every ordering-accepted record of the taxi's
	// newest second — the dedup window that makes re-sent feeds exactly
	// idempotent. A resilient client that cannot know whether a failed
	// request was applied re-sends it; records strictly before the tail
	// second are rejected as out-of-order, and records *at* the tail second
	// that byte-match an already-accepted one are rejected as duplicates
	// (whole-second ordering alone would re-accept a re-sent record that
	// shares its second with, but differs from, the newest survivor). The
	// one exception: while the cleaner holds this taxi's records pending,
	// an exact duplicate PAYMENT is a §6.1.1 state signal (it resolves a
	// PAYMENT-FREE tail as the improper-state pattern) and must pass
	// through to the cleaner, which deduplicates it itself after acting on
	// it.
	tails map[string]*taxiTail

	met       *metrics
	sm        *shardMetrics
	sinceStat int // records since the engine gauges were refreshed
	lastWM    int // engine watermark at the last emit (publish trigger)

	// prov is this shard's published provisional (current-slot) snapshot;
	// the worker stores, Service.Estimate loads.
	prov atomic.Pointer[stream.Provisional]

	ckptRecs int64 // records logged since the last successful checkpoint
	nextCkpt int64 // ckptRecs level that triggers the next auto checkpoint

	done chan struct{}
}

// taxiTail is one taxi's ordering state: its newest accepted Unix second
// and every record accepted at that second (the re-send dedup window).
type taxiTail struct {
	sec  int64
	recs []mdt.Record
}

// contains reports whether an identical record was already accepted in the
// tail second. The window holds one record per report interval in the
// common case, so the linear scan is effectively free.
func (t *taxiTail) contains(r mdt.Record) bool {
	for i := range t.recs {
		if t.recs[i].Equal(r) {
			return true
		}
	}
	return false
}

// shardWALDir is shard i's segment directory under the service WAL dir.
func shardWALDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// legacyWALPath is the single-file TQST2 checkpoint location older versions
// wrote; newShard migrates it into the segmented log on first start.
func legacyWALPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.tqs", i))
}

// newShard builds shard i, replaying its segmented WAL if one exists. A
// torn tail on the last segment — what a crash mid-commit leaves — recovers
// the longest clean prefix instead of failing startup: the service resumes
// from the last durable byte and the truncation is counted and logged.
// Damage to an older sealed segment is real corruption and fails loudly. A
// legacy single-file TQST2 checkpoint is migrated into the segmented format
// before the first record arrives.
func newShard(s *Service, i int) (*shard, error) {
	sh := &shard{
		id:       i,
		svc:      s,
		ch:       make(chan recBatch, s.cfg.QueueDepth),
		ctl:      make(chan ctlMsg, 4),
		space:    make(chan struct{}, 1),
		cleaner:  clean.NewStreamer(s.cfg.Clean),
		engine:   stream.NewLive(s.cfg.Stream),
		tails:    make(map[string]*taxiTail),
		met:      s.met,
		sm:       &s.met.shards[i],
		nextCkpt: int64(s.cfg.CheckpointEvery),
		done:     make(chan struct{}),
	}
	if s.cfg.WALDir == "" {
		return sh, nil
	}
	sh.walDir = shardWALDir(s.cfg.WALDir, i)
	sm := sh.sm
	walCfg := store.WALConfig{
		FS:           s.cfg.FS,
		SegmentBytes: s.cfg.SegmentBytes,
		OnCompact: func(folded int, err error) {
			if err != nil {
				log.Printf("ingest: shard %d wal compaction: %v", i, err)
				return
			}
			sm.walCompactions.Inc()
		},
		OnSync: func(took time.Duration, err error) {
			if err != nil {
				sm.ckptErrors.Inc()
				log.Printf("ingest: shard %d wal sync: %v", i, err)
				return
			}
			sm.walSyncs.Inc()
			s.met.walSync.Observe(took.Seconds())
		},
	}
	if _, err := os.Stat(legacyWALPath(s.cfg.WALDir, i)); err == nil {
		if err := sh.migrateLegacyWAL(walCfg); err != nil {
			return nil, fmt.Errorf("ingest: shard %d wal migration: %w", i, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("ingest: shard %d wal: %w", i, err)
	} else {
		var n int64
		wal, rec, err := store.OpenWAL(sh.walDir, walCfg, func(r mdt.Record) {
			sh.trackTail(sh.tails[r.TaxiID], r)
			sh.pushClean(r)
			n++
		})
		if err != nil {
			return nil, fmt.Errorf("ingest: shard %d recovery: %w", i, err)
		}
		sh.wal = wal
		sh.sm.replayed.Add(n)
		if rec.Truncated() {
			sh.sm.walTruncations.Inc()
			log.Printf("ingest: shard %d WAL %s damaged (%v): recovered %d records, torn tail truncated",
				i, sh.walDir, rec.Err, rec.Records)
		}
	}
	sh.sm.walSegments.Set(int64(sh.wal.Stats().Segments))
	return sh, nil
}

// migrateLegacyWAL converts a TQST2 single-file checkpoint into the
// segmented log: recover it (tolerantly — it may carry a torn tail from the
// old format's crash window), replay it through the live path, stream every
// record into a fresh segment directory and seal it durable, and only then
// remove the legacy file. A crash mid-migration re-runs it from the intact
// legacy file; the partial segment directory is discarded.
func (sh *shard) migrateLegacyWAL(walCfg store.WALConfig) error {
	legacy := legacyWALPath(sh.svc.cfg.WALDir, sh.id)
	st, rec, err := store.RecoverFile(legacy)
	if err != nil {
		return err
	}
	if rec.Truncated() {
		sh.sm.walTruncations.Inc()
		log.Printf("ingest: shard %d legacy WAL %s damaged (%v): migrating %d recovered records",
			sh.id, legacy, rec.Err, rec.Records)
	}
	if err := os.RemoveAll(sh.walDir); err != nil {
		return err
	}
	wal, _, err := store.OpenWAL(sh.walDir, walCfg, nil)
	if err != nil {
		return err
	}
	var n int64
	st.Scan(time.Time{}, time.Unix(1<<40, 0), func(r mdt.Record) bool {
		sh.trackTail(sh.tails[r.TaxiID], r)
		sh.pushClean(r)
		wal.Append(r)
		n++
		return true
	})
	if err := wal.Seal(); err != nil {
		wal.Close()
		return err
	}
	if err := os.Remove(legacy); err != nil {
		wal.Close()
		return err
	}
	sh.wal = wal
	sh.sm.replayed.Add(n)
	log.Printf("ingest: shard %d migrated %d records from legacy WAL %s", sh.id, n, legacy)
	return nil
}

// trackTail folds one ordering-accepted record into its taxi's tail window
// and returns the (possibly newly created) tail, so batch processing can
// keep the pointer memoized across a run of same-taxi records. Callers
// must already have applied the ordering rule, and tail must be the
// current entry for r.TaxiID (nil when absent).
func (sh *shard) trackTail(tail *taxiTail, r mdt.Record) *taxiTail {
	t := r.Time.Unix()
	if tail == nil {
		tail = &taxiTail{sec: t, recs: []mdt.Record{r}}
		sh.tails[r.TaxiID] = tail
		return tail
	}
	if t > tail.sec {
		tail.sec = t
		tail.recs = append(tail.recs[:0], r)
		return tail
	}
	tail.recs = append(tail.recs, r)
	return tail
}

// reserve claims room for n records in the queue; false when the claim
// would exceed depth. Lock-free so concurrent Accept calls race safely.
func (sh *shard) reserve(n, depth int64) bool {
	for {
		cur := sh.qLen.Load()
		if cur+n > depth {
			return false
		}
		if sh.qLen.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// release returns capacity and wakes one blocked producer.
func (sh *shard) release(n int64) {
	sh.qLen.Add(-n)
	select {
	case sh.space <- struct{}{}:
	default:
	}
}

// deliverBlock enqueues one batch under the Block policy, waiting for queue
// space up to the shared per-Accept deadline. Because every queued slab
// holds at least one reserved record and reservations never exceed depth,
// the channel (depth slabs) always has room once the reservation succeeds.
func (sh *shard) deliverBlock(b recBatch, deadline *time.Timer) error {
	n := int64(len(b.slab.recs))
	depth := int64(sh.svc.cfg.QueueDepth)
	for {
		if sh.reserve(n, depth) {
			sh.ch <- b
			return nil
		}
		select {
		case <-sh.space:
		case <-deadline.C:
			return ErrBackpressure
		}
	}
}

// deliverDrop enqueues one batch under DropOldest: it never blocks,
// discarding queued batches (oldest first, counted per record) to make
// room. The momentary gap between another producer's reservation and its
// send can leave nothing to steal; yield and retry.
func (sh *shard) deliverDrop(b recBatch) {
	n := int64(len(b.slab.recs))
	depth := int64(sh.svc.cfg.QueueDepth)
	for !sh.reserve(n, depth) {
		select {
		case old := <-sh.ch:
			dropped := int64(len(old.slab.recs))
			sh.qLen.Add(-dropped)
			sh.sm.dropped.Add(dropped)
			putSlab(old.slab)
		default:
			time.Sleep(time.Microsecond)
		}
	}
	sh.ch <- b
}

// run is the worker loop. The select is fair between records and control
// ops, so a sustained producer can no longer starve Flush/Checkpoint; the
// drain inside handle keeps op-after-backlog ordering for records already
// queued when the op is picked up.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		if hook := sh.svc.cfg.testStall; hook != nil {
			hook(sh.id)
		}
		select {
		case b := <-sh.ch:
			sh.take(b)
		case msg := <-sh.ctl:
			if sh.handle(msg) {
				return
			}
		}
	}
}

// take releases the batch's queue reservation (before processing, so
// producers refill the queue while the worker chews) and processes it.
func (sh *shard) take(b recBatch) {
	sh.release(int64(len(b.slab.recs)))
	sh.processBatch(b)
}

// handle runs one control op; true means exit the worker. Every op except
// Abort first drains the backlog present at pickup time: for a paused feed
// that is the whole queue (the historical "ops run once the queue is
// empty" contract), and under sustained load it bounds the op's delay at
// one queue depth.
func (sh *shard) handle(msg ctlMsg) bool {
	if msg.op != opAbort {
		for n := len(sh.ch); n > 0; n-- {
			sh.take(<-sh.ch)
		}
	}
	var err error
	exit := false
	switch msg.op {
	case opFlush:
		sh.flushAll()
		err = sh.checkpoint()
	case opFlushUntil:
		sh.emit(sh.engine.FlushUntil(msg.at))
		// A FlushUntil doubles as a durability barrier: callers use it to
		// settle the queue, so everything logged must be on stable storage
		// (and wal_pending truthful) when the reply lands.
		if sh.wal != nil {
			if err := sh.wal.Commit(); err != nil {
				sh.sm.ckptErrors.Inc()
				log.Printf("ingest: shard %d wal commit: %v", sh.id, err)
			}
			sh.sm.walPending.Set(int64(sh.wal.Pending()))
		}
	case opDrainUntil:
		// The queue-settling half of opFlushUntil without the commit:
		// benchmarks use it as a pure drain barrier so the per-record
		// numbers aren't charged a per-flush fsync at an artificial rate.
		sh.emit(sh.engine.FlushUntil(msg.at))
	case opCheckpoint:
		err = sh.checkpoint()
	case opStop:
		sh.flushAll()
		err = sh.checkpoint()
		exit = true
	case opAbort:
		exit = true
	}
	if exit && sh.wal != nil {
		if msg.op == opAbort {
			sh.wal.Abort()
		} else if cerr := sh.wal.Close(); err == nil {
			err = cerr
		}
	}
	sh.refreshEngineGauges()
	msg.reply <- err
	return exit
}

// flushAll releases the cleaner's held records into the engine (they are
// already in the WAL, which logs pre-clean), then closes every slot.
func (sh *shard) flushAll() {
	for _, r := range sh.cleaner.Flush() {
		sh.ingest(r)
	}
	sh.emit(sh.engine.Flush())
}

// processBatch runs one slab through the live path with the per-batch costs
// paid once: one clock read, one queue-wait observation, one batch-size
// observation, one process-histogram observation, one group commit — where
// the per-record loop before batching took a time.Now() and two histogram
// observes for every record. The tail pointer is memoized across runs of
// same-taxi records, so a bulk per-taxi feed does one map lookup per run
// instead of per record.
func (sh *shard) processBatch(b recBatch) {
	start := time.Now()
	recs := b.slab.recs
	sh.met.queueWait.Observe(start.Sub(b.at).Seconds())
	sh.met.batchRecs.Observe(float64(len(recs)))
	lastID := ""
	var tail *taxiTail
	for i := range recs {
		if id := recs[i].TaxiID; id != lastID || tail == nil {
			lastID = id
			tail = sh.tails[id]
		}
		tail = sh.process(recs[i], tail)
	}
	if sh.wal != nil {
		sh.maybeSync()
	}
	sh.met.process.Since(start)
	if sh.sinceStat += len(recs); sh.sinceStat >= engineGaugeEvery {
		sh.refreshEngineGauges()
	}
	putSlab(b.slab)
}

// process applies the ordering rule and the re-send dedup window, logs one
// arriving record to the WAL, cleans it and ingests the survivors. The
// record hits the WAL before the cleaner sees it so that a checkpoint
// always captures the cleaner's held records too. Returns the record's tail
// window for the caller's memoization.
func (sh *shard) process(rec mdt.Record, tail *taxiTail) *taxiTail {
	// One ordering rule for both durability modes: per-taxi time order
	// (client bug otherwise). Checking here — not via store append — means
	// WAL-on and WAL-off reject the same records, the cleaner never sees a
	// time-travelling record, and replay can never fail.
	t := rec.Time.Unix()
	if tail != nil && t < tail.sec {
		sh.sm.rejected.Inc()
		sh.met.removedOOO.Inc()
		return tail
	}
	// Same-second arrivals: drop a byte-identical re-send (or GPRS
	// retransmission) before it reaches WAL and cleaner — unless it is a
	// PAYMENT while the cleaner holds this taxi's records pending, in
	// which case the duplicate is a state signal it must see (see the
	// tails field doc). A duplicate FREE or occupied record is never a
	// signal: passing one through would re-extend or re-release a pending
	// hold the WAL already captured, so it is dropped here.
	if tail != nil && t == tail.sec && tail.contains(rec) &&
		(rec.State != mdt.Payment || sh.cleaner.PendingFor(rec.TaxiID) == 0) {
		sh.sm.rejected.Inc()
		sh.sm.deduped.Inc()
		sh.met.removedDup.Inc()
		return tail
	}
	tail = sh.trackTail(tail, rec)
	if sh.wal != nil {
		if err := sh.wal.Append(rec); err != nil {
			// The record is buffered regardless; the error reports a failed
			// segment rotation, which the WAL retries on its own backoff.
			sh.sm.ckptErrors.Inc()
			log.Printf("ingest: shard %d wal rotation: %v", sh.id, err)
		}
		if sh.ckptRecs++; sh.ckptRecs >= sh.nextCkpt {
			if err := sh.checkpoint(); err != nil {
				// A checkpoint attempt per record would hammer a sick disk;
				// back off by one interval and keep serving — the records
				// are safe in memory and re-covered by the next success.
				sh.nextCkpt += int64(sh.svc.cfg.CheckpointEvery)
			}
		}
	}
	sh.pushClean(rec)
	return tail
}

// maybeSync is the group-commit trigger, run once per batch: start a
// pipelined commit when enough records accumulated (SyncEvery) or when the
// queue went idle. The worker only pays the buffered write; the fsync runs
// on the WAL's background syncer, so under load one fsync covers many
// batches and the hot path never waits on disk latency. A trickle feed
// still becomes durable moments after the worker goes idle, and control
// ops (flush, checkpoint) remain hard barriers via the synchronous commit.
func (sh *shard) maybeSync() {
	if p := sh.wal.Pending(); p > 0 && (p >= sh.svc.cfg.SyncEvery || len(sh.ch) == 0) {
		if err := sh.wal.CommitAsync(); err != nil {
			sh.sm.ckptErrors.Inc()
			log.Printf("ingest: shard %d wal commit: %v", sh.id, err)
		}
	}
	sh.sm.walPending.Set(int64(sh.wal.Pending()))
}

// pushClean feeds one raw record to the streaming cleaner, ingests the
// survivors and attributes any removals to their §6.1.1 class.
func (sh *shard) pushClean(rec mdt.Record) {
	before := sh.cleaner.Stats()
	for _, r := range sh.cleaner.Push(rec) {
		sh.ingest(r)
	}
	after := sh.cleaner.Stats()
	if d := int64(after.GPSOutliers - before.GPSOutliers); d > 0 {
		sh.sm.rejected.Add(d)
		sh.met.removedGPS.Add(d)
	}
	if d := int64(after.Duplicates - before.Duplicates); d > 0 {
		sh.sm.rejected.Add(d)
		sh.met.removedDup.Add(d)
	}
	if d := int64(after.ImproperStates - before.ImproperStates); d > 0 {
		sh.sm.rejected.Add(d)
		sh.met.removedImproper.Add(d)
	}
}

// ingest feeds one cleaned survivor to the engine.
func (sh *shard) ingest(r mdt.Record) {
	sh.sm.accepted.Inc()
	sh.emit(sh.engine.Ingest(r))
}

// emit forwards slot closings to the aggregator, refreshes the shard's
// finality watermark, and — when this shard's watermark actually moved —
// asks the aggregator to republish the read snapshot. The order matters:
// cells are merged before the watermark rises, and every shard's own
// watermark is set before it reads the cross-shard minimum, so the publish
// that observes the final minimum always sees every contributing cell.
func (sh *shard) emit(events []stream.Event) {
	if len(events) > 0 {
		sh.svc.agg.add(events)
		if lt := sh.svc.live; lt != nil {
			lt.observe(events)
		}
	}
	wm := sh.engine.Closed()
	sh.sm.watermark.Set(int64(wm))
	if wm != sh.lastWM {
		sh.lastWM = wm
		sh.svc.agg.advance(sh.svc.minClosed())
		sh.svc.appendHistory()
		if lt := sh.svc.live; lt != nil {
			// A slot just became untouchable here: the feed clock has
			// reached at least its end, so let discovery expire and decay.
			g := sh.svc.grid
			lt.advance(g.Start.Add(time.Duration(wm) * g.SlotLen))
		}
	}
}

// refreshEngineGauges publishes the engine-introspection gauges and this
// shard's provisional current-slot snapshot; O(spots), so it runs every
// engineGaugeEvery records and after each control op.
func (sh *shard) refreshEngineGauges() {
	sh.sinceStat = 0
	sh.sm.openSlots.Set(int64(sh.engine.OpenSlots()))
	sh.sm.taxis.Set(int64(sh.engine.TrackedTaxis()))
	sh.prov.Store(sh.engine.ExportProvisional())
	sh.svc.estVersion.Add(1)
}

// checkpoint makes everything logged so far durable and seals the active
// segment — an O(1) rename however many records the shard has ever seen,
// where the old single-file format rewrote the entire store. A failed seal
// leaves the log consistent (the segment keeps growing), is counted, and
// is retried by the next checkpoint trigger.
func (sh *shard) checkpoint() error {
	if sh.wal == nil {
		return nil
	}
	t0 := time.Now()
	if err := sh.wal.Seal(); err != nil {
		sh.sm.ckptErrors.Inc()
		log.Printf("ingest: shard %d checkpoint: %v", sh.id, err)
		return err
	}
	sh.met.ckpt.Since(t0)
	st := sh.wal.Stats()
	sh.sm.walPending.Set(int64(st.Pending))
	sh.sm.walSegments.Set(int64(st.Segments))
	sh.ckptRecs = 0
	sh.nextCkpt = int64(sh.svc.cfg.CheckpointEvery)
	sh.sm.checkpoints.Inc()
	return nil
}
