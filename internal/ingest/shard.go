package ingest

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"taxiqueue/internal/clean"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/store"
	"taxiqueue/internal/stream"
)

// ctlOp is a shard control operation; ops are handled only when the
// shard's record queue is empty, so they apply after the backlog drains.
type ctlOp uint8

const (
	opFlush      ctlOp = iota // cleaner flush + close every slot + checkpoint
	opFlushUntil              // close slots final as of msg.at
	opCheckpoint              // atomic WAL save
	opStop                    // graceful: opFlush then exit
	opAbort                   // crash-test: exit immediately
)

type ctlMsg struct {
	op    ctlOp
	at    time.Time
	reply chan error
}

// shard owns one partition of the fleet: a bounded record queue, a
// streaming cleaner, a write-ahead store and an online engine. Only the
// shard's worker goroutine touches the cleaner/engine/WAL; everything the
// rest of the service reads is atomic.
type shard struct {
	id  int
	svc *Service
	ch  chan mdt.Record
	ctl chan ctlMsg

	cleaner *clean.Streamer
	engine  *stream.Live
	wal     *store.Store // nil when durability is off
	walPath string

	accepted    atomic.Int64
	rejected    atomic.Int64
	dropped     atomic.Int64
	replayed    atomic.Int64
	walPending  atomic.Int64 // raw records logged since last checkpoint
	checkpoints atomic.Int64
	watermark   atomic.Int64 // engine finality: slots below are final here

	done chan struct{}
}

// newShard builds shard i, replaying its WAL file if one exists.
func newShard(s *Service, i int) (*shard, error) {
	sh := &shard{
		id:      i,
		svc:     s,
		ch:      make(chan mdt.Record, s.cfg.QueueDepth),
		ctl:     make(chan ctlMsg, 4),
		cleaner: clean.NewStreamer(s.cfg.Clean),
		engine:  stream.NewLive(s.cfg.Stream),
		done:    make(chan struct{}),
	}
	if s.cfg.WALDir == "" {
		return sh, nil
	}
	sh.walPath = walPath(s.cfg.WALDir, i)
	if _, err := os.Stat(sh.walPath); err == nil {
		st, err := store.LoadFile(sh.walPath)
		if err != nil {
			return nil, fmt.Errorf("ingest: shard %d recovery: %w", i, err)
		}
		sh.replay(st)
		sh.wal = st
	} else if os.IsNotExist(err) {
		sh.wal = store.New()
	} else {
		return nil, fmt.Errorf("ingest: shard %d wal: %w", i, err)
	}
	return sh, nil
}

// replay rebuilds engine and cleaner state from the checkpointed WAL. The
// WAL holds raw records exactly as accepted (pre-clean), so replaying them
// through the fresh cleaner and engine re-runs live processing verbatim —
// including any records the cleaner was still holding at the crash. The
// recovered state is therefore byte-identical to the pre-checkpoint state
// at any cut point, not just quiescent ones.
func (sh *shard) replay(st *store.Store) {
	var n int64
	st.Scan(time.Time{}, time.Unix(1<<40, 0), func(r mdt.Record) bool {
		removedBefore := sh.cleaner.Stats().Removed()
		for _, surv := range sh.cleaner.Push(r) {
			sh.ingest(surv)
		}
		if d := sh.cleaner.Stats().Removed() - removedBefore; d > 0 {
			sh.rejected.Add(int64(d))
		}
		n++
		return true
	})
	sh.replayed.Store(n)
}

// offer enqueues under DropOldest: it never blocks, discarding queued
// records (oldest first) to make room.
func (sh *shard) offer(r mdt.Record) {
	for {
		select {
		case sh.ch <- r:
			return
		default:
		}
		select {
		case <-sh.ch:
			sh.dropped.Add(1)
		default:
		}
	}
}

// run is the worker loop. Records take priority; control ops run when the
// queue is momentarily empty.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		if hook := sh.svc.cfg.testStall; hook != nil {
			hook(sh.id)
		}
		select {
		case rec := <-sh.ch:
			sh.process(rec)
			continue
		default:
		}
		select {
		case rec := <-sh.ch:
			sh.process(rec)
		case msg := <-sh.ctl:
			if sh.handle(msg) {
				return
			}
		}
	}
}

// handle runs one control op; true means exit the worker.
func (sh *shard) handle(msg ctlMsg) bool {
	var err error
	exit := false
	switch msg.op {
	case opFlush:
		sh.flushAll()
		err = sh.checkpoint()
	case opFlushUntil:
		sh.emit(sh.engine.FlushUntil(msg.at))
	case opCheckpoint:
		err = sh.checkpoint()
	case opStop:
		sh.flushAll()
		err = sh.checkpoint()
		exit = true
	case opAbort:
		exit = true
	}
	msg.reply <- err
	return exit
}

// flushAll releases the cleaner's held records into the engine (they are
// already in the WAL, which logs pre-clean), then closes every slot.
func (sh *shard) flushAll() {
	for _, r := range sh.cleaner.Flush() {
		sh.ingest(r)
	}
	sh.emit(sh.engine.Flush())
}

// process logs one arriving record to the WAL, cleans it and ingests the
// survivors. The record hits the WAL before the cleaner sees it so that a
// checkpoint always captures the cleaner's held records too.
func (sh *shard) process(rec mdt.Record) {
	if sh.wal != nil {
		if err := sh.wal.Append(rec); err != nil {
			// Per-taxi time order violated (client bug): reject rather
			// than poison the WAL — replay must never fail.
			sh.rejected.Add(1)
			return
		}
		if sh.walPending.Add(1) >= int64(sh.svc.cfg.CheckpointEvery) {
			_ = sh.checkpoint() // error already recorded; keep serving
		}
	}
	removedBefore := sh.cleaner.Stats().Removed()
	for _, r := range sh.cleaner.Push(rec) {
		sh.ingest(r)
	}
	if d := sh.cleaner.Stats().Removed() - removedBefore; d > 0 {
		sh.rejected.Add(int64(d))
	}
}

// ingest feeds one cleaned survivor to the engine.
func (sh *shard) ingest(r mdt.Record) {
	sh.accepted.Add(1)
	sh.emit(sh.engine.Ingest(r))
}

// emit forwards slot closings to the aggregator and refreshes the shard's
// finality watermark.
func (sh *shard) emit(events []stream.Event) {
	if len(events) > 0 {
		sh.svc.agg.add(events)
	}
	sh.watermark.Store(int64(sh.engine.Closed()))
}

// checkpoint atomically rewrites the shard's WAL file.
func (sh *shard) checkpoint() error {
	if sh.wal == nil {
		return nil
	}
	if err := sh.wal.SaveFile(sh.walPath); err != nil {
		return err
	}
	sh.walPending.Store(0)
	sh.checkpoints.Add(1)
	return nil
}
