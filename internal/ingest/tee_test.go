package ingest

import (
	"errors"
	"testing"

	"taxiqueue/internal/core"
)

// sinkRecorder is a fake HistoryAppender that records every call.
type sinkRecorder struct {
	appends [][3]int // (day, lo, hi)
	flushes int
	fail    error
}

func (s *sinkRecorder) AppendSlots(day, lo, hi int, at func(int, int) (core.SlotFeatures, core.QueueType)) error {
	s.appends = append(s.appends, [3]int{day, lo, hi})
	// Pull one cell through so the tee's shared `at` closure is exercised
	// by every sink.
	at(0, lo)
	return s.fail
}

func (s *sinkRecorder) Flush() error {
	s.flushes++
	return s.fail
}

func TestTeeHistoryFansOut(t *testing.T) {
	a, b := &sinkRecorder{}, &sinkRecorder{}
	tee := TeeHistory(a, b)
	reads := 0
	at := func(spot, slot int) (core.SlotFeatures, core.QueueType) {
		reads++
		return core.SlotFeatures{}, core.C1
	}
	if err := tee.AppendSlots(0, 3, 7, at); err != nil {
		t.Fatal(err)
	}
	if err := tee.Flush(); err != nil {
		t.Fatal(err)
	}
	want := [3]int{0, 3, 7}
	if len(a.appends) != 1 || a.appends[0] != want || len(b.appends) != 1 || b.appends[0] != want {
		t.Fatalf("appends a=%v b=%v, want one %v each", a.appends, b.appends, want)
	}
	if a.flushes != 1 || b.flushes != 1 {
		t.Fatalf("flushes a=%d b=%d", a.flushes, b.flushes)
	}
	if reads != 2 {
		t.Fatalf("context read %d times, want once per sink", reads)
	}
}

// TestTeeHistoryFirstErrorWins: a failing sink reports its error, but the
// other sinks still see every call — a broken history disk must not
// starve the forecast learner, and vice versa.
func TestTeeHistoryFirstErrorWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	a, b, c := &sinkRecorder{fail: errA}, &sinkRecorder{fail: errB}, &sinkRecorder{}
	tee := TeeHistory(a, b, c)
	at := func(int, int) (core.SlotFeatures, core.QueueType) { return core.SlotFeatures{}, core.C1 }
	if err := tee.AppendSlots(1, 0, 4, at); err != errA {
		t.Fatalf("append error %v, want first sink's %v", err, errA)
	}
	if err := tee.Flush(); err != errA {
		t.Fatalf("flush error %v, want first sink's %v", err, errA)
	}
	for name, s := range map[string]*sinkRecorder{"a": a, "b": b, "c": c} {
		if len(s.appends) != 1 || s.flushes != 1 {
			t.Fatalf("sink %s saw %d appends, %d flushes — error short-circuited the fan-out", name, len(s.appends), s.flushes)
		}
	}
}

func TestTeeHistoryNilHandling(t *testing.T) {
	if tee := TeeHistory(); tee != nil {
		t.Fatal("empty tee not nil")
	}
	if tee := TeeHistory(nil, nil); tee != nil {
		t.Fatal("all-nil tee not nil")
	}
	a := &sinkRecorder{}
	if tee := TeeHistory(nil, a, nil); tee != HistoryAppender(a) {
		t.Fatal("single live sink not returned directly")
	}
}
