package chaos

import (
	"io"
	"net"
	"net/http"
	"time"
)

// Listener wraps l so every accepted connection injects the plan's network
// faults (resets, latency spikes, partial writes) into Read and Write.
// Wrap an httptest server's listener with it to attack the server side of
// the wire.
func (f *Faults) Listener(l net.Listener) net.Listener {
	return &listener{Listener: l, f: f}
}

type listener struct {
	net.Listener
	f *Faults
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &conn{Conn: c, f: l.f}, nil
}

// conn is one fault-injecting connection.
type conn struct {
	net.Conn
	f *Faults
}

func (c *conn) Read(b []byte) (int, error) {
	if c.f.hit("net_latency", c.f.cfg.LatencyProb) {
		time.Sleep(c.f.latency())
	}
	if c.f.hit("net_reset_read", c.f.cfg.ResetProb) {
		c.Conn.Close()
		return 0, injected("connection reset (read)")
	}
	return c.Conn.Read(b)
}

func (c *conn) Write(b []byte) (int, error) {
	if c.f.hit("net_latency", c.f.cfg.LatencyProb) {
		time.Sleep(c.f.latency())
	}
	if c.f.hit("net_reset_write", c.f.cfg.ResetProb) {
		c.Conn.Close()
		return 0, injected("connection reset (write)")
	}
	if c.f.hit("net_partial_write", c.f.cfg.PartialWriteProb) {
		n, _ := c.Conn.Write(b[:c.f.part(len(b))])
		c.Conn.Close()
		return n, injected("partial write")
	}
	return c.Conn.Write(b)
}

// RoundTripper wraps base (http.DefaultTransport when nil) so requests
// suffer pre-dial refusals, latency spikes and mid-body response cuts —
// the client side of a flaky network. Transports are expected to be reused;
// the returned value is safe for concurrent use iff base is.
func (f *Faults) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{base: base, f: f}
}

type roundTripper struct {
	base http.RoundTripper
	f    *Faults
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt.f.hit("http_refused", rt.f.cfg.RefuseProb) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, injected("connection refused")
	}
	if rt.f.hit("http_latency", rt.f.cfg.LatencyProb) {
		time.Sleep(rt.f.latency())
	}
	resp, err := rt.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if rt.f.hit("http_cut_body", rt.f.cfg.CutBodyProb) {
		resp.Body = &cutBody{rc: resp.Body, left: rt.f.part(64)}
	}
	return resp, nil
}

// cutBody yields at most left bytes of the response, then fails the read —
// a response cut mid-body.
type cutBody struct {
	rc   io.ReadCloser
	left int
}

func (c *cutBody) Read(b []byte) (int, error) {
	if c.left <= 0 {
		return 0, injected("response body cut")
	}
	if len(b) > c.left {
		b = b[:c.left]
	}
	n, err := c.rc.Read(b)
	c.left -= n
	if err == io.EOF {
		return n, err
	}
	if c.left <= 0 {
		return n, injected("response body cut")
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }
