package chaos_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"taxiqueue/internal/chaos"
	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/feedclient"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
	"taxiqueue/internal/stream"
)

// e2eDay is the shared fixture: one small simulated day, batch-analyzed
// for spots and thresholds like the deployed system's nightly run.
type e2eDay struct {
	raw  []mdt.Record
	grid core.SlotGrid
	scfg stream.Config
}

var cachedE2EDay *e2eDay

func getE2EDay(t *testing.T) *e2eDay {
	t.Helper()
	if cachedE2EDay != nil {
		return cachedE2EDay
	}
	out := sim.Run(sim.Config{Seed: 777, City: citymap.Generate(777, 0.1), InjectFaults: true})
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 25}
	cfg.Grid = core.DaySlots(out.Config.Start)
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Analyze(cleaned)
	if err != nil {
		t.Fatal(err)
	}
	spots := make([]core.QueueSpot, len(res.Spots))
	ths := make([]core.Thresholds, len(res.Spots))
	for i := range res.Spots {
		spots[i] = res.Spots[i].Spot
		ths[i] = res.Spots[i].Thresholds
	}
	cachedE2EDay = &e2eDay{
		raw: out.Records, grid: cfg.Grid,
		scfg: stream.Config{Spots: spots, Thresholds: ths, Grid: cfg.Grid, Amplify: core.PaperAmplification},
	}
	return cachedE2EDay
}

func (d *e2eDay) serviceConfig() ingest.Config {
	return ingest.Config{
		Stream: d.scfg,
		Clean:  clean.Config{ValidFrame: citymap.Island},
		Shards: 3,
	}
}

// serve exposes svc on an httptest server with the queued route shape.
func serve(svc *ingest.Service) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", svc.HandleIngest)
	mux.HandleFunc("/ingest/flush", svc.HandleFlush)
	mux.HandleFunc("/ingest/stats", svc.HandleStats)
	return httptest.NewServer(mux)
}

// snapshotCtx pulls every final (spot, slot) context out of a service.
func snapshotCtx(t *testing.T, svc *ingest.Service, d *e2eDay) ([][]core.QueueType, [][]core.SlotFeatures) {
	t.Helper()
	labels := make([][]core.QueueType, len(d.scfg.Spots))
	feats := make([][]core.SlotFeatures, len(d.scfg.Spots))
	for i := range labels {
		labels[i] = make([]core.QueueType, d.grid.Slots)
		feats[i] = make([]core.SlotFeatures, d.grid.Slots)
		for j := 0; j < d.grid.Slots; j++ {
			f, l, ok := svc.Context(i, j)
			if !ok {
				t.Fatalf("spot %d slot %d not final", i, j)
			}
			labels[i][j] = l
			feats[i][j] = f
		}
	}
	return labels, feats
}

// TestChaosDayConvergesToFaultFreeLabels is the end-to-end resilience
// scenario of the whole harness: a simulated day streamed through a
// fault-injecting transport, a mid-day crash of the durable service with a
// WAL tail torn on top (the lying-disk crash signature), a restart over
// the damaged directory and a client that blindly re-sends its whole feed
// so far — and at the end of the day every served queue context must be
// byte-identical to a run where none of it ever happened.
func TestChaosDayConvergesToFaultFreeLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute fixture")
	}
	d := getE2EDay(t)
	k1, k2 := len(d.raw)/3, 2*len(d.raw)/3

	// Reference: the fault-free day over the same client/HTTP path.
	refSvc, err := ingest.NewService(d.serviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	refSrv := serve(refSvc)
	refCl, err := feedclient.New(feedclient.Config{URL: refSrv.URL + "/ingest"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := refCl.Stream(ctx, d.raw); err != nil {
		t.Fatal(err)
	}
	if err := refCl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	wantL, wantF := snapshotCtx(t, refSvc, d)
	refSrv.Close()
	if err := refSvc.Close(); err != nil {
		t.Fatal(err)
	}

	// The day under attack: durable service, flaky transport.
	walDir := t.TempDir()
	cfg := d.serviceConfig()
	cfg.WALDir = walDir
	svc, err := ingest.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve(svc)
	faults := chaos.New(chaos.Config{Seed: 2026, RefuseProb: 0.1, CutBodyProb: 0.1})
	faults.SetEnabled(false)
	cl, err := feedclient.New(feedclient.Config{
		URL: srv.URL + "/ingest", Seed: 4,
		BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond, MaxAttempts: 60,
		HTTPClient: &http.Client{Transport: faults.RoundTripper(nil)},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a calm morning.
	if _, err := cl.Stream(ctx, d.raw[:k1]); err != nil {
		t.Fatal(err)
	}
	// Phase 2: the network degrades; the feed must still complete.
	faults.SetEnabled(true)
	rep, err := cl.Stream(ctx, d.raw[k1:k2])
	if err != nil {
		t.Fatalf("stream through chaos transport: %v", err)
	}
	faults.SetEnabled(false)
	if faults.Total() == 0 {
		t.Fatal("chaos phase injected nothing — the scenario tested nothing")
	}
	t.Logf("chaos phase: %d faults injected, %d client retries, %d backpressure rounds",
		faults.Total(), rep.Retries, rep.Backpressure)

	// Phase 3: the process dies mid-day (post-checkpoint records lost),
	// and the crash leaves shard 0's WAL with a torn tail.
	srv.Close()
	svc.Abort()
	if err := chaos.TearTail(ingest.WALPath(walDir, 0), 9); err != nil {
		t.Fatal(err)
	}

	// Phase 4: restart over the damaged directory — tolerant recovery.
	svc2, err := ingest.NewService(cfg)
	if err != nil {
		t.Fatalf("restart over torn WAL dir: %v", err)
	}
	defer svc2.Close()
	var truncs int64
	for _, sh := range svc2.Stats().Shards {
		truncs += sh.Truncations
	}
	if truncs == 0 {
		t.Fatal("restart did not register the torn WAL tail")
	}
	srv2 := serve(svc2)
	defer srv2.Close()
	cl2, err := feedclient.New(feedclient.Config{URL: srv2.URL + "/ingest"})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 5: the client cannot know what survived the crash, so it
	// re-sends its whole day so far, then finishes the feed. The ordering
	// rule and dedup window absorb the overlap; the re-send restores both
	// the post-checkpoint records the crash lost and the torn-off tail.
	if _, err := cl2.Stream(ctx, d.raw[:k2]); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Stream(ctx, d.raw[k2:]); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	gotL, gotF := snapshotCtx(t, svc2, d)
	diffs := 0
	for i := range wantL {
		for j := range wantL[i] {
			if gotL[i][j] != wantL[i][j] || gotF[i][j] != wantF[i][j] {
				if diffs < 5 {
					t.Errorf("spot %d slot %d: label %v/%v features\n  %+v\n  %+v",
						i, j, gotL[i][j], wantL[i][j], gotF[i][j], wantF[i][j])
				}
				diffs++
			}
		}
	}
	if diffs > 0 {
		t.Fatalf("%d contexts diverged from the fault-free day", diffs)
	}
}
