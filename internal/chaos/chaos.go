// Package chaos is the deterministic fault-injection harness for the live
// pipeline. The deployed system of §7.1 ran against a real 15k-taxi MDT
// feed over GPRS, where retransmissions, connection resets, outages and
// slow or lying disks are routine; this package reproduces those
// infrastructure-level faults as seeded, repeatable injectors that wrap the
// seams the production code already uses:
//
//   - Faults.Listener / Faults.RoundTripper wrap net.Listener and
//     http.RoundTripper with connection resets, latency spikes, partial
//     writes and mid-body cuts — the flaky-network half.
//   - Faults.FS wraps a store.FS with short writes, silent torn tails,
//     fsync errors and rename failures — the bad-disk half, aimed at the
//     ingest WAL checkpoint path.
//
// Every fault decision comes from one seeded PRNG behind a mutex, so a
// given seed produces the same decision sequence for the same call
// sequence, and Counts reports which faults actually fired — tests assert
// both that the system survived and that it was actually attacked.
package chaos

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the per-operation fault probabilities (all in [0, 1], zero
// disables the fault) and the PRNG seed.
type Config struct {
	// Seed fixes the fault decision sequence.
	Seed int64

	// Network faults — Listener and RoundTripper.
	ResetProb        float64       // abruptly close the connection mid-read/write
	LatencyProb      float64       // delay an I/O operation
	MaxLatency       time.Duration // upper bound for an injected delay (25ms when 0)
	PartialWriteProb float64       // write a prefix of the buffer, then reset
	CutBodyProb      float64       // RoundTripper: cut the response body mid-read
	RefuseProb       float64       // RoundTripper: fail the request before dialing

	// Filesystem faults — FS (the WAL checkpoint path).
	ShortWriteProb float64 // write a prefix and report an error
	SilentTornProb float64 // write a prefix, report success: a torn tail after rename
	SyncErrProb    float64 // fsync reports an error
	RenameErrProb  float64 // rename reports an error; the temp file is kept
}

// ErrInjected is the base error every injected fault wraps; tests can
// errors.Is against it to tell chaos from genuine failures.
var ErrInjected = errors.New("chaos: injected fault")

func injected(kind string) error {
	return &injectedError{kind: kind}
}

type injectedError struct{ kind string }

func (e *injectedError) Error() string { return "chaos: injected " + e.kind }
func (e *injectedError) Unwrap() error { return ErrInjected }

// Faults is a seeded fault plan. One Faults may back any number of
// injectors; all methods are safe for concurrent use.
type Faults struct {
	cfg     Config
	enabled atomic.Bool

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]int
}

// New returns a fault plan seeded from cfg. It starts enabled.
func New(cfg Config) *Faults {
	if cfg.MaxLatency == 0 {
		cfg.MaxLatency = 25 * time.Millisecond
	}
	f := &Faults{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: make(map[string]int),
	}
	f.enabled.Store(true)
	return f
}

// SetEnabled turns injection on or off; while off every wrapped operation
// passes through untouched (and draws no PRNG numbers). Tests use it to
// scope faults to one phase of a scenario.
func (f *Faults) SetEnabled(on bool) { f.enabled.Store(on) }

// hit draws one fault decision and records it under kind when it fires.
func (f *Faults) hit(kind string, p float64) bool {
	if p <= 0 || !f.enabled.Load() {
		return false
	}
	f.mu.Lock()
	ok := f.rng.Float64() < p
	if ok {
		f.counts[kind]++
	}
	f.mu.Unlock()
	return ok
}

// latency draws an injected delay duration in (0, MaxLatency].
func (f *Faults) latency() time.Duration {
	f.mu.Lock()
	d := time.Duration(f.rng.Int63n(int64(f.cfg.MaxLatency))) + 1
	f.mu.Unlock()
	return d
}

// part returns a strictly shorter prefix length for a buffer of n bytes
// (at least 0, at most n-1).
func (f *Faults) part(n int) int {
	if n <= 1 {
		return 0
	}
	f.mu.Lock()
	k := int(f.rng.Int63n(int64(n)))
	f.mu.Unlock()
	return k
}

// Count reports how many times the named fault fired.
func (f *Faults) Count(kind string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[kind]
}

// Counts snapshots every fault counter.
func (f *Faults) Counts() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// Total reports how many faults fired across all kinds.
func (f *Faults) Total() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, v := range f.counts {
		n += v
	}
	return n
}
