package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/store"
)

// walRec builds the i-th record of a deterministic single-taxi feed.
func walRec(i int) mdt.Record {
	base := time.Date(2026, 1, 5, 6, 0, 0, 0, time.UTC)
	return mdt.Record{
		Time: base.Add(time.Duration(i) * time.Second), TaxiID: "SH0001A",
		Pos: geo.Point{Lat: 1.3, Lon: 103.8}, Speed: 30, State: mdt.Free,
	}
}

// sealedBytes snapshots every sealed segment file in dir by content.
func sealedBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "seg-") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestWALGroupCommitRetriesInjectedFaults: short writes, fsync errors and
// rename failures hammer the group-commit and seal paths, yet no appended
// record is ever lost — a failed commit keeps the unwritten suffix
// buffered and the next attempt continues from the exact byte the disk
// actually took. Once the disk heals, one clean commit makes everything
// durable.
func TestWALGroupCommitRetriesInjectedFaults(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{Seed: 9, ShortWriteProb: 0.4, SyncErrProb: 0.4, RenameErrProb: 0.4})
	wal, _, err := store.OpenWAL(dir, store.WALConfig{FS: f.FS(nil)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const total = 2000
	faults := 0
	for i := 0; i < total; i++ {
		if err := wal.Append(walRec(i)); err != nil {
			faults++ // a failed size-triggered seal; the segment keeps growing
		}
		if i%64 == 63 {
			if err := wal.Commit(); err != nil {
				faults++
			}
		}
		if i%500 == 499 {
			if err := wal.Seal(); err != nil {
				faults++
			}
		}
	}
	if faults == 0 || f.Total() == 0 {
		t.Fatalf("fault plan injected nothing (returned %d errors, drew %d faults)", faults, f.Total())
	}
	// The disk heals: one commit covers everything still buffered.
	f.SetEnabled(false)
	if err := wal.Commit(); err != nil {
		t.Fatalf("commit on a healed disk: %v", err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	var got []mdt.Record
	w2, rec, err := store.OpenWAL(dir, store.WALConfig{}, func(r mdt.Record) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Truncated() {
		t.Fatalf("log torn after clean close: %v", rec.Err)
	}
	if len(got) != total {
		t.Fatalf("replayed %d records, appended %d through a faulty disk", len(got), total)
	}
	for i := range got {
		if !got[i].Equal(walRec(i)) {
			t.Fatalf("record %d corrupted by retried commits", i)
		}
	}
}

// TestWALSilentTornTailRecoversCleanPrefix: a lying disk acknowledges a
// group commit but persists only a prefix — the crash-consistency case the
// last-segment tolerance exists for. Recovery resumes from the clean
// prefix and never touches the sealed segments, byte for byte.
func TestWALSilentTornTailRecoversCleanPrefix(t *testing.T) {
	dir := t.TempDir()

	// A healthy run seals two segments of history.
	wal, _, err := store.OpenWAL(dir, store.WALConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const sealed = 600
	for i := 0; i < sealed; i++ {
		if err := wal.Append(walRec(i)); err != nil {
			t.Fatal(err)
		}
		if i%300 == 299 {
			if err := wal.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	before := sealedBytes(t, dir)
	if len(before) < 2 {
		t.Fatalf("fixture sealed %d segments, want at least 2", len(before))
	}

	// The disk starts lying: the next commit is acknowledged but torn.
	f := New(Config{Seed: 3, SilentTornProb: 1})
	wal2, rec, err := store.OpenWAL(dir, store.WALConfig{FS: f.FS(nil)}, nil)
	if err != nil || rec.Truncated() {
		t.Fatalf("reopen over clean log: err %v, truncated %v", err, rec.Truncated())
	}
	const extra = 200
	for i := sealed; i < sealed+extra; i++ {
		if err := wal2.Append(walRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal2.Commit(); err != nil {
		t.Fatalf("the lying disk must acknowledge the commit, got %v", err)
	}
	if f.Count("fs_silent_torn") == 0 {
		t.Fatal("torn-write fault never fired")
	}
	wal2.Abort() // crash

	// Recovery: a clean prefix of the acknowledged records, full sealed
	// history, sealed files untouched.
	n := 0
	w3, _, err := store.OpenWAL(dir, store.WALConfig{}, func(r mdt.Record) {
		if !r.Equal(walRec(n)) {
			t.Fatalf("record %d differs after torn-tail recovery", n)
		}
		n++
	})
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	defer w3.Close()
	if n < sealed || n >= sealed+extra {
		t.Fatalf("replayed %d records, want the sealed %d plus a proper prefix of the torn %d", n, sealed, extra)
	}
	after := sealedBytes(t, dir)
	for name, b := range before {
		if !bytes.Equal(after[name], b) {
			t.Fatalf("sealed segment %s modified by recovery", name)
		}
	}
}
