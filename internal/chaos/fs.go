package chaos

import (
	"os"
	"sync/atomic"

	"taxiqueue/internal/store"
)

// FS wraps base (store.OS when nil) with the plan's disk faults: short
// writes that report an error, silent short writes that report success (the
// torn tail a lying disk leaves after a crash), fsync errors and rename
// failures. Plug it into ingest.Config.FS to attack the WAL checkpoint
// path.
func (f *Faults) FS(base store.FS) store.FS {
	if base == nil {
		base = store.OS
	}
	return &fsys{base: base, f: f}
}

type fsys struct {
	base store.FS
	f    *Faults
}

func (s *fsys) Create(name string) (store.File, error) {
	fl, err := s.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{File: fl, f: s.f}, nil
}

func (s *fsys) CreateTemp(dir, pattern string) (store.File, error) {
	fl, err := s.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{File: fl, f: s.f}, nil
}

func (s *fsys) Rename(oldpath, newpath string) error {
	if s.f.hit("fs_rename_err", s.f.cfg.RenameErrProb) {
		return injected("rename failure")
	}
	return s.base.Rename(oldpath, newpath)
}

func (s *fsys) Remove(name string) error { return s.base.Remove(name) }

// file is one fault-injecting WAL temp file. Once a silent torn fault
// fires, every later write (and sync) pretends to succeed while writing
// nothing — the file on disk stays a clean prefix, exactly the torn tail a
// crash after an unsynced rename leaves behind. dead is atomic because the
// WAL's group-commit syncer calls Sync concurrently with the writer.
type file struct {
	store.File
	f    *Faults
	dead atomic.Bool
}

func (fl *file) Write(b []byte) (int, error) {
	if fl.dead.Load() {
		return len(b), nil
	}
	if fl.f.hit("fs_short_write", fl.f.cfg.ShortWriteProb) {
		n, _ := fl.File.Write(b[:fl.f.part(len(b))])
		return n, injected("short write")
	}
	if fl.f.hit("fs_silent_torn", fl.f.cfg.SilentTornProb) {
		fl.dead.Store(true)
		_, _ = fl.File.Write(b[:fl.f.part(len(b))])
		return len(b), nil
	}
	return fl.File.Write(b)
}

func (fl *file) Sync() error {
	if fl.dead.Load() {
		return nil
	}
	if fl.f.hit("fs_sync_err", fl.f.cfg.SyncErrProb) {
		return injected("fsync failure")
	}
	return fl.File.Sync()
}

// TearTail truncates the last n bytes of the file at path (clamped to the
// file size) — the deterministic way to plant a torn WAL tail for a
// recovery test.
func TearTail(path string, n int) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := st.Size() - int64(n)
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}
