package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/store"
)

func testStore(t *testing.T, n int) *store.Store {
	t.Helper()
	s := store.New()
	base := time.Date(2026, 1, 5, 6, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		err := s.Append(mdt.Record{
			Time: base.Add(time.Duration(i) * time.Second), TaxiID: "SH0001A",
			Pos: geo.Point{Lat: 1.3, Lon: 103.8}, Speed: 30, State: mdt.Free,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestDeterministicDecisions: one seed, one decision sequence — the whole
// point of a reproducible chaos harness.
func TestDeterministicDecisions(t *testing.T) {
	cfg := Config{Seed: 42}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		if got, want := a.hit("x", 0.3), b.hit("x", 0.3); got != want {
			t.Fatalf("decision %d diverged between same-seed plans", i)
		}
	}
	if a.Count("x") == 0 || a.Count("x") != b.Count("x") {
		t.Fatalf("counts diverged: %d vs %d", a.Count("x"), b.Count("x"))
	}
	if c := New(Config{Seed: 43}); c.hitSeq(500) == a.hitSeq(0) {
		t.Log("different seeds produced equal sequences (possible, unlikely)")
	}
}

// hitSeq draws n decisions and packs them; helper for the seed test.
func (f *Faults) hitSeq(n int) (seq uint64) {
	for i := 0; i < n && i < 64; i++ {
		if f.hit("seq", 0.5) {
			seq |= 1 << i
		}
	}
	return seq
}

// TestDisabledPassesThrough: a disabled plan injects nothing and draws no
// PRNG numbers, so re-enabling resumes the seeded sequence untouched.
func TestDisabledPassesThrough(t *testing.T) {
	f := New(Config{Seed: 7})
	f.SetEnabled(false)
	for i := 0; i < 100; i++ {
		if f.hit("x", 1.0) {
			t.Fatal("disabled plan injected a fault")
		}
	}
	if f.Total() != 0 {
		t.Fatalf("disabled plan counted %d faults", f.Total())
	}
	f.SetEnabled(true)
	if !f.hit("x", 1.0) {
		t.Fatal("re-enabled plan failed to inject at p=1")
	}
}

// TestFSShortWriteFailsSaveKeepsCommitted: a short write fails the save
// with an injected error, and the previously committed file is untouched —
// the atomicity contract under a sick disk.
func TestFSShortWriteFailsSaveKeepsCommitted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.tqs")
	s := testStore(t, 100)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	f := New(Config{Seed: 1, ShortWriteProb: 1})
	if err := s.SaveFileFS(f.FS(nil), path); !errors.Is(err, ErrInjected) {
		t.Fatalf("save through a short-writing disk: %v, want injected fault", err)
	}
	if f.Count("fs_short_write") == 0 {
		t.Fatal("short write not counted")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("failed save altered the committed file")
	}
	if temps, err := store.RemoveTemps(dir); err != nil || len(temps) != 0 {
		t.Fatalf("failed save left temp files %v (err %v)", temps, err)
	}
}

// TestFSRenameFailure: a failed rename fails the save and leaves the
// committed copy alone.
func TestFSRenameFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.tqs")
	s := testStore(t, 50)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f := New(Config{Seed: 1, RenameErrProb: 1})
	if err := s.SaveFileFS(f.FS(nil), path); !errors.Is(err, ErrInjected) {
		t.Fatalf("save through failing rename: %v, want injected fault", err)
	}
	if st, err := store.LoadFile(path); err != nil || st.Len() != 50 {
		t.Fatalf("committed file damaged after failed rename: %v", err)
	}
}

// TestFSSilentTornTailIsRecoverable: the nastiest disk fault — a save that
// reports success but leaves a torn file — must be exactly the damage
// store.Recover tolerates.
func TestFSSilentTornTailIsRecoverable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.tqs")
	s := testStore(t, 200)
	f := New(Config{Seed: 3, SilentTornProb: 1})
	if err := s.SaveFileFS(f.FS(nil), path); err != nil {
		t.Fatalf("silent torn save must report success, got %v", err)
	}
	if f.Count("fs_silent_torn") == 0 {
		t.Fatal("silent torn fault not counted")
	}
	if _, err := store.LoadFile(path); err == nil {
		t.Fatal("strict load accepted a torn file")
	}
	got, rec, err := store.RecoverFile(path)
	if err != nil {
		// A tear inside the 8-byte header is legitimately hopeless;
		// anything else must recover.
		if st, statErr := os.Stat(path); statErr == nil && st.Size() >= 8 {
			t.Fatalf("recover failed on a torn file with an intact header: %v", err)
		}
		return
	}
	if !rec.Truncated() {
		t.Fatal("recovery did not notice the torn tail")
	}
	if got.Len() >= 200 {
		t.Fatalf("recovered %d records from a torn file of 200", got.Len())
	}
}

// TestTearTail: the deterministic tail cutter used by the e2e scenario.
func TestTearTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.tqs")
	if err := testStore(t, 100).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(path)
	if err := TearTail(path, 9); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() != before.Size()-9 {
		t.Fatalf("size %d after tearing 9 bytes from %d", after.Size(), before.Size())
	}
	if _, err := store.LoadFile(path); err == nil {
		t.Fatal("strict load accepted the torn file")
	}
	if st, rec, err := store.RecoverFile(path); err != nil || !rec.Truncated() || st.Len() == 0 {
		t.Fatalf("recover over torn tail: %v (truncated=%v, %d records)", err, rec.Truncated(), st.Len())
	}
	// Tearing more than the file holds clamps to empty.
	if err := TearTail(path, 1<<30); err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(path); st.Size() != 0 {
		t.Fatalf("over-tear left %d bytes", st.Size())
	}
}

// TestRoundTripperRefusesAndCuts: the client-side injector refuses
// requests pre-dial and cuts response bodies mid-read, each surfacing as a
// transport error the feed client retries on.
func TestRoundTripperRefusesAndCuts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 4096))
	}))
	defer srv.Close()

	refuse := New(Config{Seed: 1, RefuseProb: 1})
	client := &http.Client{Transport: refuse.RoundTripper(nil)}
	if _, err := client.Get(srv.URL); err == nil || !errors.Is(errors.Unwrap(err), ErrInjected) {
		t.Fatalf("refused request returned %v, want injected fault", err)
	}
	if refuse.Count("http_refused") != 1 {
		t.Fatalf("http_refused count %d", refuse.Count("http_refused"))
	}

	cut := New(Config{Seed: 1, CutBodyProb: 1})
	client = &http.Client{Transport: cut.RoundTripper(nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); !errors.Is(err, ErrInjected) {
		t.Fatalf("cut body read returned %v, want injected fault", err)
	}
	if cut.Count("http_cut_body") != 1 {
		t.Fatalf("http_cut_body count %d", cut.Count("http_cut_body"))
	}
}

// TestListenerResets: the server-side injector kills accepted connections,
// which a client sees as a transport error — never a silent success.
func TestListenerResets(t *testing.T) {
	f := New(Config{Seed: 1, ResetProb: 1})
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	}))
	srv.Listener = f.Listener(srv.Listener)
	srv.Start()
	defer srv.Close()
	if _, err := http.Get(srv.URL); err == nil {
		t.Fatal("request through a resetting listener succeeded")
	}
	if f.Count("net_reset_read")+f.Count("net_reset_write") == 0 {
		t.Fatal("no reset counted")
	}
}
