// Package monitor reproduces the independent vehicle monitor system of
// §6.2.2 (citing Wu et al., MDM 2012): it continuously observes the number
// of vehicles inside a predefined polygon (a taxi-stand area), updates the
// count every 60 seconds, and exposes the series through a RESTful JSON
// endpoint. The per-slot average taxi numbers it reports validate the
// queue-type labels (Table 8).
package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"taxiqueue/internal/geo"
)

// Sample is one observation of the vehicle count inside the monitored area.
type Sample struct {
	Time  time.Time `json:"time"`
	Count int       `json:"count"`
}

// AreaCounter tracks the vehicle count inside one polygonal area from a
// change log (every count change is reported once). It is safe for
// concurrent use.
type AreaCounter struct {
	name string
	area geo.Polygon

	mu  sync.RWMutex
	log []Sample // non-decreasing time; Count is the value from that instant on
}

// NewAreaCounter creates a counter for the given polygon.
func NewAreaCounter(name string, area geo.Polygon) *AreaCounter {
	return &AreaCounter{name: name, area: area}
}

// Name returns the monitor's name.
func (c *AreaCounter) Name() string { return c.name }

// Area returns the monitored polygon.
func (c *AreaCounter) Area() geo.Polygon { return c.area }

// Observe records that the vehicle count changed to n at time t. Calls must
// be in non-decreasing time order; out-of-order observations are rejected.
func (c *AreaCounter) Observe(t time.Time, n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.log) > 0 && t.Before(c.log[len(c.log)-1].Time) {
		return fmt.Errorf("monitor: out-of-order observation at %v", t)
	}
	c.log = append(c.log, Sample{Time: t, Count: n})
	return nil
}

// CountAt returns the vehicle count in effect at time t (0 before the first
// observation).
func (c *AreaCounter) CountAt(t time.Time) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i := sort.Search(len(c.log), func(i int) bool { return c.log[i].Time.After(t) })
	if i == 0 {
		return 0
	}
	return c.log[i-1].Count
}

// Average returns the time-weighted average vehicle count over [from, to).
func (c *AreaCounter) Average(from, to time.Time) float64 {
	if !to.After(from) {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := to.Sub(from).Seconds()
	cur := 0
	i := sort.Search(len(c.log), func(i int) bool { return c.log[i].Time.After(from) })
	if i > 0 {
		cur = c.log[i-1].Count
	}
	acc := 0.0
	prev := from
	for ; i < len(c.log) && c.log[i].Time.Before(to); i++ {
		acc += float64(cur) * c.log[i].Time.Sub(prev).Seconds()
		prev = c.log[i].Time
		cur = c.log[i].Count
	}
	acc += float64(cur) * to.Sub(prev).Seconds()
	return acc / total
}

// MinuteSeries returns one sample per minute over [from, to), matching the
// real system's 60-second update cadence.
func (c *AreaCounter) MinuteSeries(from, to time.Time) []Sample {
	var out []Sample
	for t := from; t.Before(to); t = t.Add(time.Minute) {
		out = append(out, Sample{Time: t, Count: c.CountAt(t)})
	}
	return out
}

// Service exposes a set of AreaCounters over HTTP, mimicking the REST web
// service of the deployed monitor system.
type Service struct {
	mu       sync.RWMutex
	counters map[string]*AreaCounter
}

// NewService creates an empty monitor service.
func NewService() *Service {
	return &Service{counters: make(map[string]*AreaCounter)}
}

// Add registers a counter; it replaces any counter with the same name.
func (s *Service) Add(c *AreaCounter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters[c.Name()] = c
}

// Get returns the counter with the given name.
func (s *Service) Get(name string) (*AreaCounter, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.counters[name]
	return c, ok
}

// ServeHTTP implements the JSON API:
//
//	GET /monitors                  -> ["name", ...]
//	GET /monitors/{name}/count?at=RFC3339
//	GET /monitors/{name}/series?from=RFC3339&to=RFC3339
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	const prefix = "/monitors"
	path := r.URL.Path
	if path == prefix || path == prefix+"/" {
		s.mu.RLock()
		names := make([]string, 0, len(s.counters))
		for name := range s.counters {
			names = append(names, name)
		}
		s.mu.RUnlock()
		sort.Strings(names)
		writeJSON(w, names)
		return
	}
	if len(path) <= len(prefix)+1 {
		http.NotFound(w, r)
		return
	}
	rest := path[len(prefix)+1:]
	var name, action string
	if i := lastSlash(rest); i >= 0 {
		name, action = rest[:i], rest[i+1:]
	} else {
		http.NotFound(w, r)
		return
	}
	c, ok := s.Get(name)
	if !ok {
		http.NotFound(w, r)
		return
	}
	switch action {
	case "count":
		at := time.Now()
		if v := r.URL.Query().Get("at"); v != "" {
			t, err := time.Parse(time.RFC3339, v)
			if err != nil {
				http.Error(w, "bad 'at' timestamp", http.StatusBadRequest)
				return
			}
			at = t
		}
		writeJSON(w, Sample{Time: at, Count: c.CountAt(at)})
	case "series":
		from, err1 := time.Parse(time.RFC3339, r.URL.Query().Get("from"))
		to, err2 := time.Parse(time.RFC3339, r.URL.Query().Get("to"))
		if err1 != nil || err2 != nil {
			http.Error(w, "bad 'from'/'to' timestamps", http.StatusBadRequest)
			return
		}
		writeJSON(w, c.MinuteSeries(from, to))
	default:
		http.NotFound(w, r)
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
