package monitor

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"taxiqueue/internal/geo"
)

var t0 = time.Date(2026, 1, 5, 12, 0, 0, 0, time.UTC)

func newCounter() *AreaCounter {
	area := geo.CirclePolygon(geo.Point{Lat: 1.3, Lon: 103.83}, 40, 12)
	return NewAreaCounter("lucky-plaza", area)
}

func TestCountAt(t *testing.T) {
	c := newCounter()
	if c.CountAt(t0) != 0 {
		t.Error("count before any observation not 0")
	}
	mustObserve(t, c, t0, 2)
	mustObserve(t, c, t0.Add(10*time.Minute), 5)
	mustObserve(t, c, t0.Add(20*time.Minute), 1)
	cases := []struct {
		at   time.Time
		want int
	}{
		{t0.Add(-time.Second), 0},
		{t0, 2},
		{t0.Add(5 * time.Minute), 2},
		{t0.Add(10 * time.Minute), 5},
		{t0.Add(15 * time.Minute), 5},
		{t0.Add(25 * time.Minute), 1},
	}
	for _, cse := range cases {
		if got := c.CountAt(cse.at); got != cse.want {
			t.Errorf("CountAt(%v) = %d, want %d", cse.at, got, cse.want)
		}
	}
}

func mustObserve(t *testing.T, c *AreaCounter, at time.Time, n int) {
	t.Helper()
	if err := c.Observe(at, n); err != nil {
		t.Fatal(err)
	}
}

func TestObserveOutOfOrder(t *testing.T) {
	c := newCounter()
	mustObserve(t, c, t0, 1)
	if err := c.Observe(t0.Add(-time.Second), 2); err == nil {
		t.Fatal("out-of-order observation accepted")
	}
	// Equal timestamps are fine (two changes in the same second).
	if err := c.Observe(t0, 3); err != nil {
		t.Fatalf("same-time observation rejected: %v", err)
	}
}

func TestAverage(t *testing.T) {
	c := newCounter()
	mustObserve(t, c, t0, 4)
	mustObserve(t, c, t0.Add(10*time.Minute), 0)
	// Over [t0, t0+20m): 4 for half, 0 for half => 2.0.
	got := c.Average(t0, t0.Add(20*time.Minute))
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("Average = %g, want 2", got)
	}
	// Window starting mid-log picks up the in-effect count.
	got = c.Average(t0.Add(5*time.Minute), t0.Add(10*time.Minute))
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("mid-window Average = %g, want 4", got)
	}
	if c.Average(t0, t0) != 0 {
		t.Error("empty window average not 0")
	}
}

func TestMinuteSeries(t *testing.T) {
	c := newCounter()
	mustObserve(t, c, t0.Add(90*time.Second), 7)
	s := c.MinuteSeries(t0, t0.Add(4*time.Minute))
	if len(s) != 4 {
		t.Fatalf("series length %d, want 4", len(s))
	}
	wantCounts := []int{0, 0, 7, 7}
	for i, w := range wantCounts {
		if s[i].Count != w {
			t.Errorf("minute %d count = %d, want %d", i, s[i].Count, w)
		}
	}
}

func TestServiceEndpoints(t *testing.T) {
	c := newCounter()
	mustObserve(t, c, t0, 3)
	svc := NewService()
	svc.Add(c)
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// List monitors.
	var names []string
	getJSON(t, ts.URL+"/monitors", &names)
	if len(names) != 1 || names[0] != "lucky-plaza" {
		t.Fatalf("monitor list = %v", names)
	}

	// Count at a time.
	var sample Sample
	getJSON(t, ts.URL+"/monitors/lucky-plaza/count?at="+t0.Add(time.Minute).Format(time.RFC3339), &sample)
	if sample.Count != 3 {
		t.Fatalf("count endpoint = %d, want 3", sample.Count)
	}

	// Series.
	var series []Sample
	url := ts.URL + "/monitors/lucky-plaza/series?from=" + t0.Format(time.RFC3339) +
		"&to=" + t0.Add(3*time.Minute).Format(time.RFC3339)
	getJSON(t, url, &series)
	if len(series) != 3 || series[0].Count != 3 {
		t.Fatalf("series endpoint = %v", series)
	}
}

func TestServiceErrors(t *testing.T) {
	svc := NewService()
	svc.Add(newCounter())
	ts := httptest.NewServer(svc)
	defer ts.Close()

	for _, cse := range []struct {
		method, url string
		wantStatus  int
	}{
		{"POST", "/monitors", http.StatusMethodNotAllowed},
		{"GET", "/monitors/nope/count", http.StatusNotFound},
		{"GET", "/monitors/lucky-plaza/unknown", http.StatusNotFound},
		{"GET", "/monitors/lucky-plaza/count?at=not-a-time", http.StatusBadRequest},
		{"GET", "/monitors/lucky-plaza/series?from=x&to=y", http.StatusBadRequest},
		{"GET", "/monitors/lucky-plaza", http.StatusNotFound},
	} {
		req, _ := http.NewRequest(cse.method, ts.URL+cse.url, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != cse.wantStatus {
			t.Errorf("%s %s -> %d, want %d", cse.method, cse.url, resp.StatusCode, cse.wantStatus)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s -> %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestAreaPolygonUsable(t *testing.T) {
	c := newCounter()
	center := geo.Point{Lat: 1.3, Lon: 103.83}
	if !c.Area().Contains(center) {
		t.Error("monitored area does not contain its center")
	}
	if c.Area().Contains(geo.Destination(center, 0, 500)) {
		t.Error("monitored area contains a point 500 m away")
	}
	if c.Name() != "lucky-plaza" {
		t.Error("name mismatch")
	}
}
