package report

import (
	"encoding/json"
	"io"
)

// GeoJSON types — just enough of RFC 7946 for the frontend map layer.

// Feature is one GeoJSON feature with a Point geometry.
type Feature struct {
	Type       string         `json:"type"`
	Geometry   PointGeometry  `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

// PointGeometry is a GeoJSON Point ([lon, lat] per the spec).
type PointGeometry struct {
	Type        string     `json:"type"`
	Coordinates [2]float64 `json:"coordinates"`
}

// FeatureCollection is the top-level GeoJSON document.
type FeatureCollection struct {
	Type     string    `json:"type"`
	Features []Feature `json:"features"`
}

// NewFeatureCollection creates an empty collection.
func NewFeatureCollection() *FeatureCollection {
	return &FeatureCollection{Type: "FeatureCollection", Features: []Feature{}}
}

// AddPoint appends one point feature (lat/lon in the usual order; the
// GeoJSON [lon, lat] flip happens here, once).
func (fc *FeatureCollection) AddPoint(lat, lon float64, properties map[string]any) {
	fc.Features = append(fc.Features, Feature{
		Type: "Feature",
		Geometry: PointGeometry{
			Type:        "Point",
			Coordinates: [2]float64{lon, lat},
		},
		Properties: properties,
	})
}

// Encode writes the collection as indented JSON.
func (fc *FeatureCollection) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fc)
}
