// Package report renders the evaluation tables and figure series as aligned
// ASCII, matching the rows the paper prints. It knows nothing about the
// experiments themselves — cmd/experiments feeds it data.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned table with an optional title.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which gets %.1f... use AddRow with Fmt* helpers
// for specific formatting instead.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage string ("48.3%").
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// F formats a float with one decimal.
func F(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Meters formats a distance in meters.
func Meters(v float64) string { return fmt.Sprintf("%.1f m", v) }

// Series renders a named numeric series (a "figure" in text form): one
// labeled value per line plus a proportional bar.
type Series struct {
	Title  string
	labels []string
	values []float64
}

// NewSeries creates a series with a title.
func NewSeries(title string) *Series { return &Series{Title: title} }

// Add appends one labeled value.
func (s *Series) Add(label string, value float64) {
	s.labels = append(s.labels, label)
	s.values = append(s.values, value)
}

// String renders the series with scaled bars.
func (s *Series) String() string {
	var b strings.Builder
	if s.Title != "" {
		b.WriteString(s.Title)
		b.WriteByte('\n')
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range s.values {
		if v > maxVal {
			maxVal = v
		}
		if len(s.labels[i]) > maxLabel {
			maxLabel = len(s.labels[i])
		}
	}
	for i, v := range s.values {
		bar := ""
		if maxVal > 0 {
			bar = strings.Repeat("#", int(v/maxVal*40+0.5))
		}
		fmt.Fprintf(&b, "%-*s %8.1f  %s\n", maxLabel, s.labels[i], v, bar)
	}
	return b.String()
}
