package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "22")
	out := tb.String()
	if !strings.HasPrefix(out, "My Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4+1 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: "Value" starts at the same offset in header and rows.
	headerIdx := strings.Index(lines[1], "Value")
	rowIdx := strings.Index(lines[3], "1")
	if headerIdx != strings.Index(lines[4], "22") || rowIdx != headerIdx {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title produced leading newline")
	}
}

func TestTableExtraCells(t *testing.T) {
	tb := NewTable("t", "A")
	tb.AddRow("x", "extra")
	if !strings.Contains(tb.String(), "extra") {
		t.Error("extra cell dropped")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("t", "A", "B")
	tb.AddRowf(3.14159, 42)
	out := tb.String()
	if !strings.Contains(out, "3.1") || !strings.Contains(out, "42") {
		t.Errorf("AddRowf formatting wrong:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if Pct(0.483) != "48.3%" {
		t.Errorf("Pct = %q", Pct(0.483))
	}
	if F(7.649) != "7.6" {
		t.Errorf("F = %q", F(7.649))
	}
	if F2(6.127) != "6.13" {
		t.Errorf("F2 = %q", F2(6.127))
	}
	if Meters(7.61) != "7.6 m" {
		t.Errorf("Meters = %q", Meters(7.61))
	}
}

func TestSeriesRendering(t *testing.T) {
	s := NewSeries("Spots per day")
	s.Add("Mon", 80)
	s.Add("Sun", 40)
	out := s.String()
	if !strings.HasPrefix(out, "Spots per day\n") {
		t.Error("missing series title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("series lines = %d", len(lines))
	}
	monBar := strings.Count(lines[1], "#")
	sunBar := strings.Count(lines[2], "#")
	if monBar != 40 {
		t.Errorf("max bar = %d, want 40", monBar)
	}
	if sunBar != 20 {
		t.Errorf("half bar = %d, want 20", sunBar)
	}
}

func TestGeoJSON(t *testing.T) {
	fc := NewFeatureCollection()
	fc.AddPoint(1.3044, 103.8335, map[string]any{"name": "Lucky Plaza", "context": "C2"})
	var buf strings.Builder
	if err := fc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// GeoJSON uses [lon, lat] order.
	if !strings.Contains(out, "103.8335") || !strings.Contains(out, "1.3044") {
		t.Fatalf("coordinates missing:\n%s", out)
	}
	lonIdx := strings.Index(out, "103.8335")
	latIdx := strings.Index(out, "1.3044")
	if lonIdx > latIdx {
		t.Error("coordinates not in [lon, lat] order")
	}
	if !strings.Contains(out, `"FeatureCollection"`) || !strings.Contains(out, `"Lucky Plaza"`) {
		t.Errorf("document incomplete:\n%s", out)
	}
	// Empty collection still encodes a features array, not null.
	var empty strings.Builder
	if err := NewFeatureCollection().Encode(&empty); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), "null") {
		t.Error("empty collection encodes null features")
	}
}

func TestSeriesAllZero(t *testing.T) {
	s := NewSeries("z")
	s.Add("a", 0)
	if strings.Contains(s.String(), "#") {
		t.Error("zero series drew bars")
	}
}
