package core

import (
	"fmt"
	"sort"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/geo"
)

// SpotState is the lifecycle stage of a live-discovered queue spot.
type SpotState uint8

const (
	// SpotEmerging: a window cluster appeared but has not yet reached the
	// confirmation density — tentative, dropped the moment it dissolves.
	SpotEmerging SpotState = iota
	// SpotConfirmed: the cluster reached ConfirmPoints; it stays confirmed
	// until it thins below DecayPoints (hysteresis band).
	SpotConfirmed
	// SpotDecaying: a confirmed spot whose window support fell below
	// DecayPoints; it re-confirms at ConfirmPoints or is dropped after
	// DropAfter without recovery.
	SpotDecaying
)

var spotStateNames = [...]string{"emerging", "confirmed", "decaying"}

// String returns the lowercase wire spelling used by /spots?live=1.
func (s SpotState) String() string {
	if int(s) < len(spotStateNames) {
		return spotStateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// LiveSpot is one live-discovered queue spot with its lifecycle state.
// Spot.PickupCount is the spot's current sliding-window support (0 while
// decaying with no qualifying cluster), not a daily total.
type LiveSpot struct {
	Spot      QueueSpot
	State     SpotState
	FirstSeen time.Time // when the cluster was first tracked
	LastSeen  time.Time // last refresh at which a qualifying cluster matched
}

// LiveDetectorConfig parameterizes online queue-spot discovery.
type LiveDetectorConfig struct {
	// Cluster holds the DBSCAN ε_d/p_d pair applied to the sliding window.
	// MinPoints is the paper's per-day density scaled to the window the
	// caller chooses; every extracted cluster holds at least MinPoints.
	Cluster cluster.Params
	// Window is how much pickup history stays clusterable (default 3h).
	Window time.Duration
	// ConfirmPoints promotes emerging → confirmed (default 2×MinPoints).
	ConfirmPoints int
	// DecayPoints demotes confirmed → decaying when window support falls
	// below it (default MinPoints, i.e. the cluster dissolved). Must not
	// exceed ConfirmPoints — the gap is the anti-flap hysteresis band.
	DecayPoints int
	// DropAfter removes a decaying spot that never re-confirmed
	// (default Window/2).
	DropAfter time.Duration
	// MatchMeters is the centroid distance within which an extracted
	// cluster is the same spot as a tracked one (default 2×EpsMeters).
	MatchMeters float64
	// ByZone mirrors DetectorConfig.ByZone: one independent window per
	// Fig. 5 zone, which is also the unit the multi-node roadmap shards.
	ByZone bool
}

// DefaultLiveDetectorConfig returns the paper's clustering parameters over
// a 3-hour window with a 2× confirmation hysteresis.
func DefaultLiveDetectorConfig() LiveDetectorConfig {
	return LiveDetectorConfig{
		Cluster: cluster.Params{EpsMeters: 15, MinPoints: 50},
		Window:  3 * time.Hour,
		ByZone:  true,
	}
}

// withDefaults fills derived zero fields.
func (c LiveDetectorConfig) withDefaults() LiveDetectorConfig {
	if c.Window <= 0 {
		c.Window = 3 * time.Hour
	}
	if c.ConfirmPoints <= 0 {
		c.ConfirmPoints = 2 * c.Cluster.MinPoints
	}
	if c.DecayPoints <= 0 {
		c.DecayPoints = c.Cluster.MinPoints
	}
	if c.DropAfter <= 0 {
		c.DropAfter = c.Window / 2
	}
	if c.MatchMeters <= 0 {
		c.MatchMeters = 2 * c.Cluster.EpsMeters
	}
	return c
}

// LiveStats are cumulative lifecycle transition counts (the feed behind
// the spot_live_*_total metrics) plus the current tracked population.
type LiveStats struct {
	Tracked        int    // spots currently tracked (any state)
	WindowPoints   int    // pickups currently alive across zone windows
	EmergingTotal  uint64 // spots that started tracking
	ConfirmedTotal uint64 // transitions into confirmed
	DecayedTotal   uint64 // transitions into decaying
	DroppedTotal   uint64 // spots removed (dissolved or timed out)
}

// LiveDetector discovers queue spots online: pickups stream into per-zone
// sliding-window incremental DBSCAN (cluster.Incremental), and Refresh
// reconciles the extracted clusters against tracked spots, advancing the
// emerging → confirmed → decaying lifecycle with hysteresis so labels
// don't flap. Not safe for concurrent use; the ingest tracker serializes.
type LiveDetector struct {
	cfg   LiveDetectorConfig
	zones []*cluster.Incremental // NumZones entries, or one when !ByZone
	spots []LiveSpot
	stats LiveStats
	now   time.Time
}

// NewLiveDetector builds an empty detector; zero config fields take the
// documented defaults.
func NewLiveDetector(cfg LiveDetectorConfig) (*LiveDetector, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.DecayPoints > cfg.ConfirmPoints {
		return nil, fmt.Errorf("core: live detector decay threshold %d above confirm threshold %d (inverted hysteresis)",
			cfg.DecayPoints, cfg.ConfirmPoints)
	}
	n := 1
	if cfg.ByZone {
		n = citymap.NumZones
	}
	d := &LiveDetector{cfg: cfg, zones: make([]*cluster.Incremental, n)}
	for i := range d.zones {
		inc, err := cluster.NewIncremental(cfg.Cluster)
		if err != nil {
			return nil, err
		}
		d.zones[i] = inc
	}
	return d, nil
}

// Config returns the detector's effective (default-filled) configuration.
func (d *LiveDetector) Config() LiveDetectorConfig { return d.cfg }

// Observe feeds one pickup event: the point enters its zone's window and
// the detector clock advances to t (monotonically). Degenerate
// (non-finite) points are dropped, reported false.
func (d *LiveDetector) Observe(p geo.Point, t time.Time) bool {
	d.Advance(t)
	z := 0
	if d.cfg.ByZone {
		z = int(citymap.ZoneOf(p))
	}
	if !d.zones[z].Insert(p, t) {
		return false
	}
	d.zones[z].ExpireBefore(d.now.Add(-d.cfg.Window))
	return true
}

// Advance moves the detector clock forward without a pickup — flush
// barriers and slot closures call this so windows drain during lulls.
func (d *LiveDetector) Advance(t time.Time) {
	if t.After(d.now) {
		d.now = t
	}
}

// Spots extracts the current window clusters as batch-style queue spots,
// sorted exactly like DetectSpots (count desc, then position). With a
// window covering a whole day this equals the batch DetectSpots result
// for that day — the incremental/batch equivalence property.
func (d *LiveDetector) Spots() []QueueSpot {
	var spots []QueueSpot
	var pts []geo.Point
	for z, inc := range d.zones {
		pts = inc.Points(pts[:0])
		res := inc.Result()
		cents := res.Centroids(pts)
		sizes := res.ClusterSizes()
		for i := range cents {
			zone := citymap.Zone(z)
			if !d.cfg.ByZone {
				zone = citymap.ZoneOf(cents[i])
			}
			spots = append(spots, QueueSpot{Pos: cents[i], Zone: zone, PickupCount: sizes[i]})
		}
	}
	sortSpots(spots)
	return spots
}

func sortSpots(spots []QueueSpot) {
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].PickupCount != spots[j].PickupCount {
			return spots[i].PickupCount > spots[j].PickupCount
		}
		if spots[i].Pos.Lat != spots[j].Pos.Lat {
			return spots[i].Pos.Lat < spots[j].Pos.Lat
		}
		return spots[i].Pos.Lon < spots[j].Pos.Lon
	})
}

// Refresh expires stale window points, extracts the current clusters and
// reconciles them with the tracked spots:
//
//   - an unmatched cluster starts a new emerging spot;
//   - a matched spot follows the cluster's centroid and support, and the
//     support drives the hysteresis state machine (confirm at
//     ConfirmPoints, decay below DecayPoints, re-confirm at
//     ConfirmPoints);
//   - an emerging spot whose cluster dissolved is dropped immediately, a
//     decaying one after DropAfter.
//
// The returned slice is a fresh copy sorted by support (desc, ties by
// position) — safe to publish in an immutable snapshot.
func (d *LiveDetector) Refresh() []LiveSpot {
	cutoff := d.now.Add(-d.cfg.Window)
	for _, inc := range d.zones {
		inc.ExpireBefore(cutoff)
	}
	spots := d.Spots()

	// Biggest clusters claim tracked spots first: nearest unclaimed
	// tracked spot of the same zone within MatchMeters.
	matched := make([]int, len(d.spots)) // window support matched this round; -1 = unmatched
	for i := range matched {
		matched[i] = -1
	}
	var fresh []QueueSpot
	for _, sp := range spots {
		best, bestD := -1, d.cfg.MatchMeters+1
		for i := range d.spots {
			if matched[i] >= 0 || d.spots[i].Spot.Zone != sp.Zone {
				continue
			}
			if dist := geo.Equirect(d.spots[i].Spot.Pos, sp.Pos); dist < bestD {
				best, bestD = i, dist
			}
		}
		if best < 0 {
			fresh = append(fresh, sp)
			continue
		}
		matched[best] = sp.PickupCount
		d.spots[best].Spot = sp
		d.spots[best].LastSeen = d.now
	}

	kept := d.spots[:0]
	for i := range d.spots {
		s := d.spots[i]
		support := matched[i]
		if support < 0 {
			s.Spot.PickupCount = 0
			support = 0
		}
		switch s.State {
		case SpotEmerging:
			if matched[i] < 0 {
				d.stats.DroppedTotal++
				continue // tentative and dissolved: forget it
			}
			if support >= d.cfg.ConfirmPoints {
				s.State = SpotConfirmed
				d.stats.ConfirmedTotal++
			}
		case SpotConfirmed:
			if support < d.cfg.DecayPoints {
				s.State = SpotDecaying
				d.stats.DecayedTotal++
			}
		case SpotDecaying:
			if support >= d.cfg.ConfirmPoints {
				s.State = SpotConfirmed
				d.stats.ConfirmedTotal++
			} else if d.now.Sub(s.LastSeen) >= d.cfg.DropAfter {
				d.stats.DroppedTotal++
				continue
			}
		}
		kept = append(kept, s)
	}
	d.spots = kept
	for _, sp := range fresh {
		d.stats.EmergingTotal++
		ls := LiveSpot{Spot: sp, State: SpotEmerging, FirstSeen: d.now, LastSeen: d.now}
		if sp.PickupCount >= d.cfg.ConfirmPoints {
			// Born past the confirmation density — e.g. a pop-up rank that
			// filled between refreshes. Skip straight to confirmed.
			ls.State = SpotConfirmed
			d.stats.ConfirmedTotal++
		}
		d.spots = append(d.spots, ls)
	}

	sort.Slice(d.spots, func(i, j int) bool {
		a, b := &d.spots[i], &d.spots[j]
		if a.Spot.PickupCount != b.Spot.PickupCount {
			return a.Spot.PickupCount > b.Spot.PickupCount
		}
		if a.Spot.Pos.Lat != b.Spot.Pos.Lat {
			return a.Spot.Pos.Lat < b.Spot.Pos.Lat
		}
		return a.Spot.Pos.Lon < b.Spot.Pos.Lon
	})
	out := make([]LiveSpot, len(d.spots))
	copy(out, d.spots)
	return out
}

// Stats returns cumulative lifecycle counters and the live population.
func (d *LiveDetector) Stats() LiveStats {
	st := d.stats
	st.Tracked = len(d.spots)
	for _, inc := range d.zones {
		st.WindowPoints += inc.Len()
	}
	return st
}
