package core

import (
	"sort"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/geo"
)

// RegistrySpot is a consolidated queue spot in the multi-day registry.
type RegistrySpot struct {
	// Pos is the mean position across the days the spot appeared.
	Pos geo.Point
	// Zone is the spot's analysis zone.
	Zone citymap.Zone
	// Days is how many of the input days detected the spot.
	Days int
	// AvgPickups is the mean daily pickup count over those days.
	AvgPickups float64
	// Sporadic marks spots seen on few days (the §7.2 weekend-only park,
	// one-off events): present but below the stability threshold.
	Sporadic bool
}

// MergeSpots consolidates several days' detected spot sets into the stable
// registry the deployed system keeps (§7.1: "the queue spot detection
// module collects the most recent 5 week days' dataset ... to extract and
// update the corresponding queue locations").
//
// Spots from different days within matchMeters of each other are the same
// physical spot; a consolidated spot seen on at least minDays days is
// stable, the rest are flagged Sporadic. The output is ordered by
// descending AvgPickups.
func MergeSpots(daily [][]QueueSpot, matchMeters float64, minDays int) []RegistrySpot {
	if matchMeters <= 0 {
		matchMeters = 20
	}
	if minDays < 1 {
		minDays = 1
	}
	// Flatten with day indexes and cluster positions with DBSCAN
	// (minPts=1: every spot belongs somewhere).
	type member struct {
		day  int
		spot QueueSpot
	}
	var members []member
	var pts []geo.Point
	for day, spots := range daily {
		for _, s := range spots {
			members = append(members, member{day: day, spot: s})
			pts = append(pts, s.Pos)
		}
	}
	if len(members) == 0 {
		return nil
	}
	res, err := cluster.DBSCAN(pts, cluster.Params{EpsMeters: matchMeters, MinPoints: 1})
	if err != nil {
		// Unreachable with the validated parameters above; degrade to one
		// spot per member.
		res = cluster.Result{Labels: make([]int, len(pts)), NumClusters: len(pts)}
		for i := range res.Labels {
			res.Labels[i] = i
		}
	}
	type agg struct {
		lat, lon float64
		n        int
		days     map[int]bool
		pickups  int
	}
	aggs := make([]*agg, res.NumClusters)
	for i, m := range members {
		c := res.Labels[i]
		if c == cluster.Noise {
			continue // cannot happen with minPts=1; defensive
		}
		a := aggs[c]
		if a == nil {
			a = &agg{days: map[int]bool{}}
			aggs[c] = a
		}
		a.lat += m.spot.Pos.Lat
		a.lon += m.spot.Pos.Lon
		a.n++
		a.days[m.day] = true
		a.pickups += m.spot.PickupCount
	}
	var out []RegistrySpot
	for _, a := range aggs {
		if a == nil || a.n == 0 {
			continue
		}
		pos := geo.Point{Lat: a.lat / float64(a.n), Lon: a.lon / float64(a.n)}
		out = append(out, RegistrySpot{
			Pos:        pos,
			Zone:       citymap.ZoneOf(pos),
			Days:       len(a.days),
			AvgPickups: float64(a.pickups) / float64(len(a.days)),
			Sporadic:   len(a.days) < minDays,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AvgPickups != out[j].AvgPickups {
			return out[i].AvgPickups > out[j].AvgPickups
		}
		if out[i].Pos.Lat != out[j].Pos.Lat {
			return out[i].Pos.Lat < out[j].Pos.Lat
		}
		return out[i].Pos.Lon < out[j].Pos.Lon
	})
	return out
}

// Stable returns only the non-sporadic registry spots.
func Stable(registry []RegistrySpot) []RegistrySpot {
	var out []RegistrySpot
	for _, s := range registry {
		if !s.Sporadic {
			out = append(out, s)
		}
	}
	return out
}

// Sporadics returns only the sporadic registry spots (§7.2's weekend park
// and one-off event spots).
func Sporadics(registry []RegistrySpot) []RegistrySpot {
	var out []RegistrySpot
	for _, s := range registry {
		if s.Sporadic {
			out = append(out, s)
		}
	}
	return out
}

// RegistryConfig drives the deployed system's weekday/weekend split (§7.1:
// weekday spots from weekday history, weekend spots from weekend history).
type RegistryConfig struct {
	MatchMeters float64 // 20 when zero
	MinDays     int     // stability threshold; 1 when zero
}

// BuildDayTypeRegistries merges per-day spot sets into one registry per day
// kind. daySets maps each day's weekday to its detected spots.
func BuildDayTypeRegistries(daySets map[time.Weekday][]QueueSpot, cfg RegistryConfig) map[citymap.DayKind][]RegistrySpot {
	if cfg.MatchMeters <= 0 {
		cfg.MatchMeters = 20
	}
	grouped := map[citymap.DayKind][][]QueueSpot{}
	for wd, spots := range daySets {
		k := citymap.DayKindOf(int(wd))
		grouped[k] = append(grouped[k], spots)
	}
	out := map[citymap.DayKind][]RegistrySpot{}
	for k, daily := range grouped {
		minDays := cfg.MinDays
		if minDays == 0 {
			// Default: stable = seen on a majority of that kind's days.
			minDays = len(daily)/2 + 1
		}
		out[k] = MergeSpots(daily, cfg.MatchMeters, minDays)
	}
	return out
}
