package core

import (
	"fmt"
	"sort"
	"time"
)

// QueueType is one of the four queue contexts of Table 3, plus
// Unidentified for slots whose features are insignificant (§6.2.2).
type QueueType uint8

const (
	// Unidentified slots have features too weak for either QCD routine.
	Unidentified QueueType = iota
	// C1: taxi queue and passenger queue concurrently (supply and demand
	// both high).
	C1
	// C2: passenger queue only.
	C2
	// C3: taxi queue only.
	C3
	// C4: neither queue.
	C4
)

// String implements fmt.Stringer.
func (q QueueType) String() string {
	switch q {
	case C1:
		return "C1"
	case C2:
		return "C2"
	case C3:
		return "C3"
	case C4:
		return "C4"
	default:
		return "Unidentified"
	}
}

// Thresholds holds the six QCD parameters of Algorithm 3 for one queue
// spot. Different spots have different values (§5.3: a hospital differs
// from the airport).
type Thresholds struct {
	EtaWait  time.Duration // η_wait: short-wait reference
	EtaDep   time.Duration // η_dep: short departure-interval reference
	TauArr   float64       // τ_arr: arrival-count bar, slotLen/η_wait
	TauDep   float64       // τ_dep: departure-count bar, slotLen/η_dep
	EtaDur   time.Duration // η_dur: departure-span bar (90% of slot)
	TauRatio float64       // τ_ratio: zone/day street-job share
}

// String implements fmt.Stringer.
func (t Thresholds) String() string {
	return fmt.Sprintf("η_wait=%v τ_arr=%.1f η_dep=%v τ_dep=%.1f η_dur=%v τ_ratio=%.2f",
		t.EtaWait.Round(time.Second), t.TauArr, t.EtaDep.Round(time.Second),
		t.TauDep, t.EtaDur, t.TauRatio)
}

// shortestFractionMean returns the mean of the smallest frac (0..1) of ds;
// zero when ds is empty.
func shortestFractionMean(ds []time.Duration, frac float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := int(float64(len(sorted))*frac + 0.999)
	if n < 1 {
		n = 1
	}
	if n > len(sorted) {
		n = len(sorted)
	}
	var sum time.Duration
	for _, d := range sorted[:n] {
		sum += d
	}
	return sum / time.Duration(n)
}

// minEta floors degenerate threshold estimates: with very little activity
// the top-20% mean can collapse to near zero, which would make τ explode.
const minEta = 20 * time.Second

// SelectThresholds implements the §6.2.1 recipe. The "wait time values" and
// "departure intervals" it ranks are the slot-level averages defined in
// §5.2 — t̄wait(r)ʲ and t̄dep(r)ʲ — computed from the raw (unamplified)
// observed feed: η_wait is the mean of the 20% smallest nonzero per-slot
// average waits, η_dep the mean of the 20% smallest nonzero per-slot
// average departure intervals ("which can commonly depict taxi wait and
// departure events when the passenger queue exists"). τ_arr and τ_dep are
// slotLen/η; η_dur is 90% of the slot; τ_ratio is the zone/day street-job
// share supplied by the caller.
//
// Pass the features computed with NoAmplification: thresholds calibrate on
// what the partial feed actually recorded, and the amplified features are
// then compared against them (this interplay is what makes the saturation
// bars τ_arr/τ_dep reachable at all; see EXPERIMENTS.md).
func SelectThresholds(rawFeats []SlotFeatures, grid SlotGrid, streetRatio float64) Thresholds {
	var slotWaits, slotIntervals []time.Duration
	for _, f := range rawFeats {
		if f.TWait > 0 {
			slotWaits = append(slotWaits, f.TWait)
		}
		if f.TDep > 0 {
			slotIntervals = append(slotIntervals, f.TDep)
		}
	}
	etaWait := shortestFractionMean(slotWaits, 0.20)
	if etaWait < minEta {
		etaWait = minEta
	}
	etaDep := shortestFractionMean(slotIntervals, 0.20)
	if etaDep < minEta {
		etaDep = minEta
	}
	slotSec := grid.SlotLen.Seconds()
	return Thresholds{
		EtaWait:  etaWait,
		EtaDep:   etaDep,
		TauArr:   slotSec / etaWait.Seconds(),
		TauDep:   slotSec / etaDep.Seconds(),
		EtaDur:   time.Duration(0.9 * float64(grid.SlotLen)),
		TauRatio: streetRatio,
	}
}

// StreetJobRatio returns the street share of all departures in the feature
// set: the paper's daily "street jobs / (street + booking jobs)" ratio used
// for τ_ratio (about 0.84 in the central zone on Sundays).
func StreetJobRatio(feats []SlotFeatures) float64 {
	street, total := 0, 0
	for _, f := range feats {
		street += f.StreetDepartures
		total += f.StreetDepartures + f.BookingDepartures
	}
	if total == 0 {
		return 1
	}
	return float64(street) / float64(total)
}

// Classify is the Queue Context Disambiguation algorithm (Algorithm 3):
// given the per-slot 5-tuples Ω(r) and the spot's thresholds, it labels
// every slot C1..C4 or Unidentified.
//
// Routine 1 splits on the Little's-Law queue length L̄: without a taxi
// queue (L̄ < 1), many arrivals with short waits mean passengers are
// consuming taxis (C2) while few arrivals with long waits mean nobody is
// (C4). With a taxi queue (L̄ ≥ 1), many closely spaced departures mean
// passengers are draining the line (C1) while few, widely spaced departures
// mean the line just sits (C3).
//
// Routine 2 rescues unlabeled slots using the booking share: when
// departures span most of the slot and the FREE-arrival/departure ratio is
// below the zone norm, a large portion of departures are ONCALL taxis —
// passengers are struggling to hail (C1 or C2 by L̄).
func Classify(feats []SlotFeatures, th Thresholds) []QueueType {
	labels := make([]QueueType, len(feats))
	// Routine 1.
	for j, f := range feats {
		switch {
		case f.QLen < 1:
			if f.NArr >= th.TauArr && f.TWait < th.EtaWait {
				labels[j] = C2
			} else if f.NArr < th.TauArr && f.TWait >= th.EtaWait {
				labels[j] = C4
			}
		default: // L̄ >= 1
			if f.NDep >= th.TauDep && f.TDep < th.EtaDep {
				labels[j] = C1
			} else if f.NDep < th.TauDep && f.TDep >= th.EtaDep {
				labels[j] = C3
			}
		}
	}
	// Routine 2.
	for j, f := range feats {
		if labels[j] != Unidentified || f.NDep == 0 {
			continue
		}
		span := time.Duration(f.NDep * float64(f.TDep))
		if span > th.EtaDur && f.NArr/f.NDep < th.TauRatio {
			if f.QLen >= 1 {
				labels[j] = C1
			} else {
				labels[j] = C2
			}
		}
	}
	return labels
}

// Proportions tallies label shares across any number of label slices
// (the Table 7 computation).
func Proportions(labelSets ...[]QueueType) map[QueueType]float64 {
	counts := map[QueueType]int{}
	total := 0
	for _, set := range labelSets {
		for _, l := range set {
			counts[l]++
			total++
		}
	}
	out := make(map[QueueType]float64, len(counts))
	if total == 0 {
		return out
	}
	for l, n := range counts {
		out[l] = float64(n) / float64(total)
	}
	return out
}
