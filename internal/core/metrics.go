package core

import "taxiqueue/internal/obs"

// Batch pipeline observability: one latency histogram per Fig. 4 stage plus
// run-level counters, registered on the process-wide obs.Default so
// queued's /metrics covers the nightly batch recompute alongside the live
// ingest tier. Histograms are process-global on purpose — every Analyze
// call in the process folds into the same series, which is exactly what a
// scraper watching recompute latency wants.
var (
	stagePEA    = stageTimer("pea")    // pickup extraction over all taxis
	stageDBSCAN = stageTimer("dbscan") // queue-spot detection (clustering)
	stageWTE    = stageTimer("wte")    // W(r) assignment + wait-time extraction
	stageQCD    = stageTimer("qcd")    // features, thresholds, classification

	pipelineRuns = obs.Default.Counter("pipeline_runs_total",
		"Completed batch Analyze runs.")
	pipelineRecords = obs.Default.Gauge("pipeline_last_records",
		"Input records of the most recent batch Analyze run.")
	pipelineSpots = obs.Default.Gauge("pipeline_last_spots",
		"Queue spots detected by the most recent batch Analyze run.")
)

func stageTimer(stage string) *obs.Histogram {
	return obs.Default.Histogram("pipeline_stage_seconds",
		"Wall-clock duration of one batch pipeline stage.",
		obs.DefBuckets, obs.Label{Name: "stage", Value: stage})
}
