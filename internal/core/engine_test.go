package core

import (
	"math/rand"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
)

// simDay runs a quarter-scale simulated day and cleans it, caching the
// result across tests in this package.
var simDayCache *simDayResult

type simDayResult struct {
	out     sim.Output
	cleaned []mdt.Record
}

func simDay(t testing.TB) *simDayResult {
	t.Helper()
	if simDayCache != nil {
		return simDayCache
	}
	cfg := sim.Config{Seed: 42, City: citymap.Generate(4242, 0.25), InjectFaults: true}
	out := sim.Run(cfg)
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	simDayCache = &simDayResult{out: out, cleaned: cleaned}
	return simDayCache
}

// engineForTest uses a smaller DBSCAN minPts than the paper because the
// quarter-scale test city has fewer taxis feeding each spot.
func engineForTest(t testing.TB) *Engine {
	t.Helper()
	cfg := DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 30}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineDetectsSpotsAtLandmarks(t *testing.T) {
	day := simDay(t)
	res, err := engineForTest(t).Analyze(day.cleaned)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spots) < 10 {
		t.Fatalf("detected only %d spots", len(res.Spots))
	}
	city := day.out.Config.City
	// Precision: every detected spot lies within 30 m of some landmark.
	falsePositives := 0
	var locErrSum float64
	for _, s := range res.Spots {
		_, d, _ := city.NearestLandmark(s.Spot.Pos)
		if d > 30 {
			falsePositives++
		} else {
			locErrSum += d
		}
	}
	if falsePositives > len(res.Spots)/10 {
		t.Errorf("%d/%d detected spots are not near any landmark", falsePositives, len(res.Spots))
	}
	// Mean location error should be GPS-noise scale (paper: 7.6 m).
	meanErr := locErrSum / float64(len(res.Spots)-falsePositives)
	if meanErr > 12 {
		t.Errorf("mean location error %.1f m, want < 12 m", meanErr)
	}
	// Recall: busy landmarks (>= 150 true pickups) must be detected.
	missed := 0
	busy := 0
	for i, st := range day.out.Truth.Spots {
		if st.Pickups < 150 {
			continue
		}
		busy++
		found := false
		for _, s := range res.Spots {
			if geo.Equirect(s.Spot.Pos, city.Landmarks[i].Pos) < 30 {
				found = true
				break
			}
		}
		if !found {
			missed++
		}
	}
	if busy == 0 {
		t.Fatal("no busy landmarks in ground truth")
	}
	if missed > busy/10 {
		t.Errorf("missed %d of %d busy landmarks", missed, busy)
	}
}

func TestEngineLabelsTrackGroundTruth(t *testing.T) {
	day := simDay(t)
	res, err := engineForTest(t).Analyze(day.cleaned)
	if err != nil {
		t.Fatal(err)
	}
	city := day.out.Config.City
	grid := res.Config.Grid

	// For every labeled slot, compare against the simulator's true queue
	// state. Aggregate true taxi-queue lengths per label: C1/C3 slots
	// should sit on much longer true taxi queues than C2/C4 slots.
	var lenSum [5]float64
	var lenN [5]int
	var paxSum [5]float64
	for _, sa := range res.Spots {
		// Match the spot back to its landmark's ground truth.
		var truth *sim.SpotTruth
		for i := range city.Landmarks {
			if geo.Equirect(sa.Spot.Pos, city.Landmarks[i].Pos) < 30 {
				truth = day.out.Truth.Spots[i]
				break
			}
		}
		if truth == nil {
			continue
		}
		for j, lbl := range sa.Labels {
			from, to := grid.Bounds(j)
			lenSum[lbl] += truth.AvgTaxiQueueLen(from, to)
			paxSum[lbl] += truth.AvgPaxQueueLen(from, to)
			lenN[lbl]++
		}
	}
	avg := func(sum [5]float64, lbl QueueType) float64 {
		if lenN[lbl] == 0 {
			return 0
		}
		return sum[lbl] / float64(lenN[lbl])
	}
	taxiQueueish := (avg(lenSum, C1)*float64(lenN[C1]) + avg(lenSum, C3)*float64(lenN[C3])) /
		float64(max(lenN[C1]+lenN[C3], 1))
	noTaxiQueueish := (avg(lenSum, C2)*float64(lenN[C2]) + avg(lenSum, C4)*float64(lenN[C4])) /
		float64(max(lenN[C2]+lenN[C4], 1))
	if lenN[C1]+lenN[C3] == 0 {
		t.Fatal("no slots labeled C1 or C3")
	}
	if lenN[C2]+lenN[C4] == 0 {
		t.Fatal("no slots labeled C2 or C4")
	}
	if taxiQueueish <= noTaxiQueueish {
		t.Errorf("true taxi queue length under C1/C3 labels (%.2f) not above C2/C4 (%.2f)",
			taxiQueueish, noTaxiQueueish)
	}
	// Passenger-queue validation: C1+C2 slots see longer true passenger
	// queues than C3+C4 slots.
	paxQueueish := (paxSum[C1] + paxSum[C2]) / float64(max(lenN[C1]+lenN[C2], 1))
	noPaxQueueish := (paxSum[C3] + paxSum[C4]) / float64(max(lenN[C3]+lenN[C4], 1))
	if paxQueueish <= noPaxQueueish {
		t.Errorf("true passenger queue length under C1/C2 labels (%.2f) not above C3/C4 (%.2f)",
			paxQueueish, noPaxQueueish)
	}
}

func TestEngineAllContextsAppear(t *testing.T) {
	day := simDay(t)
	res, err := engineForTest(t).Analyze(day.cleaned)
	if err != nil {
		t.Fatal(err)
	}
	var all [][]QueueType
	for _, sa := range res.Spots {
		all = append(all, sa.Labels)
	}
	p := Proportions(all...)
	for _, q := range []QueueType{C1, C2, C3, C4} {
		if p[q] == 0 {
			t.Errorf("context %v never identified (proportions %v)", q, p)
		}
	}
	// The two dominant shares in the paper are C1 (~30%) and C4 (~33%);
	// unidentified is ~16%. Check coarse ordering only.
	if p[C4] < 0.10 {
		t.Errorf("C4 share %.2f too low", p[C4])
	}
	if p[Unidentified] > 0.60 {
		t.Errorf("unidentified share %.2f too high", p[Unidentified])
	}
}

func TestEngineEmptyInput(t *testing.T) {
	e, err := NewEngine(DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spots) != 0 || len(res.Pickups) != 0 {
		t.Fatal("empty input produced spots")
	}
}

func TestEngineAdversarialInputs(t *testing.T) {
	e, err := NewEngine(DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC)
	mk := func(n int, sameTaxi, samePos bool) []mdt.Record {
		recs := make([]mdt.Record, n)
		for i := range recs {
			id := "SH0001A"
			if !sameTaxi {
				id = "SH" + string(rune('0'+i%10)) + "001A"
			}
			pos := geo.Point{Lat: 1.30, Lon: 103.83}
			if !samePos {
				pos = geo.Offset(pos, float64(i%100)*50, float64(i%37)*50)
			}
			recs[i] = mdt.Record{
				Time: base.Add(time.Duration(i) * 20 * time.Second), TaxiID: id,
				Pos: pos, Speed: float64(i % 60), State: mdt.State(i % 4),
			}
		}
		return recs
	}
	cases := []struct {
		name string
		recs []mdt.Record
	}{
		{"single taxi", mk(5000, true, false)},
		{"single location", mk(5000, false, true)},
		{"single record", mk(1, true, true)},
		{"two identical records", append(mk(1, true, true), mk(1, true, true)...)},
	}
	for _, c := range cases {
		res, err := e.Analyze(c.recs)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, sa := range res.Spots {
			if len(sa.Labels) == 0 {
				t.Fatalf("%s: spot with no labels", c.name)
			}
		}
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{SpeedThresholdKmh: -1}); err == nil {
		t.Error("negative speed threshold accepted")
	}
	bad := DefaultEngineConfig()
	bad.Detector.Cluster = cluster.Params{EpsMeters: -5, MinPoints: 10}
	if _, err := NewEngine(bad); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestEngineDeterministic(t *testing.T) {
	day := simDay(t)
	e := engineForTest(t)
	a, err := e.Analyze(day.cleaned)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Analyze(day.cleaned)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Spots) != len(b.Spots) {
		t.Fatalf("spot counts differ: %d vs %d", len(a.Spots), len(b.Spots))
	}
	for i := range a.Spots {
		if a.Spots[i].Spot != b.Spots[i].Spot {
			t.Fatal("spot order/content not deterministic")
		}
		for j := range a.Spots[i].Labels {
			if a.Spots[i].Labels[j] != b.Spots[i].Labels[j] {
				t.Fatal("labels not deterministic")
			}
		}
	}
}

func TestSpotCountByZone(t *testing.T) {
	day := simDay(t)
	res, err := engineForTest(t).Analyze(day.cleaned)
	if err != nil {
		t.Fatal(err)
	}
	byZone := res.SpotCountByZone()
	total := 0
	for _, n := range byZone {
		total += n
	}
	if total != len(res.Spots) {
		t.Fatalf("zone counts sum %d != %d spots", total, len(res.Spots))
	}
}

func TestDetectSpotsSynthetic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(center geo.Point, n int) []Pickup {
		ps := make([]Pickup, n)
		for i := range ps {
			ps[i] = Pickup{Centroid: geo.Offset(center, rng.NormFloat64()*4, rng.NormFloat64()*4)}
		}
		return ps
	}
	a := geo.Point{Lat: 1.30, Lon: 103.82} // Central
	b := geo.Point{Lat: 1.36, Lon: 103.99} // East
	pickups := append(mk(a, 80), mk(b, 60)...)
	// Scatter noise.
	for i := 0; i < 100; i++ {
		pickups = append(pickups, Pickup{Centroid: geo.Point{
			Lat: 1.23 + rng.Float64()*0.2, Lon: 103.62 + rng.Float64()*0.4}})
	}
	cfg := DetectorConfig{Cluster: cluster.Params{EpsMeters: 15, MinPoints: 30}, ByZone: true}
	spots, err := DetectSpots(pickups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(spots) != 2 {
		t.Fatalf("detected %d spots, want 2", len(spots))
	}
	if spots[0].PickupCount < spots[1].PickupCount {
		t.Error("spots not sorted by pickup count")
	}
	zones := map[citymap.Zone]bool{}
	for _, s := range spots {
		zones[s.Zone] = true
	}
	if !zones[citymap.Central] || !zones[citymap.East] {
		t.Errorf("zones wrong: %v", spots)
	}
	// ByZone=false must find the same two clusters.
	cfg.ByZone = false
	flat, err := DetectSpots(pickups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != 2 {
		t.Fatalf("island-wide clustering found %d spots, want 2", len(flat))
	}
}

func TestAssignPickups(t *testing.T) {
	a := geo.Point{Lat: 1.30, Lon: 103.82}
	b := geo.Point{Lat: 1.36, Lon: 103.99}
	spots := []QueueSpot{{Pos: a}, {Pos: b}}
	pickups := []Pickup{
		{Centroid: geo.Offset(a, 5, 5)},
		{Centroid: geo.Offset(a, -8, 3)},
		{Centroid: geo.Offset(b, 2, -4)},
		{Centroid: geo.Offset(a, 500, 0)}, // too far: dropped
	}
	assigned := AssignPickups(pickups, spots, 30)
	if len(assigned[0]) != 2 || len(assigned[1]) != 1 {
		t.Fatalf("assignment = %d/%d, want 2/1", len(assigned[0]), len(assigned[1]))
	}
	if got := AssignPickups(pickups, nil, 30); len(got) != 0 {
		t.Fatal("assignment to zero spots non-empty")
	}
}

func TestSpotPositions(t *testing.T) {
	spots := []QueueSpot{{Pos: geo.Point{Lat: 1, Lon: 2}}, {Pos: geo.Point{Lat: 3, Lon: 4}}}
	pts := SpotPositions(spots)
	if len(pts) != 2 || pts[1] != (geo.Point{Lat: 3, Lon: 4}) {
		t.Fatalf("positions = %v", pts)
	}
}

func TestLabelAt(t *testing.T) {
	grid := DaySlots(midnight())
	sa := SpotAnalysis{Labels: make([]QueueType, 48)}
	sa.Labels[20] = C1
	if got := sa.LabelAt(grid, midnight().Add(10*time.Hour+5*time.Minute)); got != C1 {
		t.Fatalf("LabelAt = %v, want C1", got)
	}
	if got := sa.LabelAt(grid, midnight().Add(-time.Hour)); got != Unidentified {
		t.Fatalf("LabelAt out of range = %v", got)
	}
}
