// Package core implements the paper's queue analytic engine: the Pickup
// Extraction Algorithm (Algorithm 1), queue-spot detection by density
// clustering of pickup locations (§4.3), the Wait Time Extraction algorithm
// (Algorithm 2), the per-slot 5-tuple pickup-event features (§5.2), and the
// Queue Context Disambiguation algorithm (Algorithm 3), tied together by
// the two-tier Engine (§3).
package core

import (
	"sort"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// DefaultSpeedThresholdKmh is the paper's PEA speed threshold η_sp
// (§6.1.2: 10 km/h).
const DefaultSpeedThresholdKmh = 10

// Pickup is one slow pickup event extracted by PEA: the sub-trajectory Rᵏ
// plus its central GPS location (the mean of the member coordinates, §4.3).
type Pickup struct {
	Sub      mdt.Trajectory
	Centroid geo.Point
}

// ExtractPickups is the Pickup Extraction Algorithm (Algorithm 1). It scans
// one taxi's time-ordered trajectory and returns the sub-trajectory set ω
// of slow pickup events: runs of at least two consecutive records at or
// below the speed threshold that
//
//   - contain no non-operational state (BREAK/OFFLINE/POWEROFF resets the
//     scan),
//   - do not start occupied and end unoccupied (a passenger-alight event),
//   - do not start FREE and end ONCALL (the taxi left for a booking job
//     elsewhere), and
//   - change state at least once (filters traffic jams and red lights).
//
// The run is delimited by the next record above the threshold; a run still
// open at the end of the trajectory is discarded, exactly as in the paper's
// loop.
func ExtractPickups(tr mdt.Trajectory, speedThresholdKmh float64) []Pickup {
	if speedThresholdKmh <= 0 {
		speedThresholdKmh = DefaultSpeedThresholdKmh
	}
	var out []Pickup
	var run mdt.Trajectory // Rᵏ
	sigma1 := false        // one low-speed record seen
	sigma2 := false        // collecting (>= two consecutive low-speed records)
	reset := func() {
		run = run[:0]
		sigma1, sigma2 = false, false
	}
	var prev mdt.Record
	havePrev := false
	for _, p := range tr {
		if p.State.NonOperational() {
			reset()
			havePrev = false
			continue
		}
		low := p.Speed <= speedThresholdKmh
		switch {
		case low && !sigma1:
			sigma1 = true
		case low && sigma1 && !sigma2:
			// Second consecutive low-speed record: open the run with the
			// previous record and this one (Algorithm 1 line 7).
			if havePrev {
				run = append(run, prev)
			}
			run = append(run, p)
			sigma2 = true
		case low && sigma2:
			run = append(run, p)
		case !low && sigma1 && !sigma2:
			sigma1 = false
		case !low && sigma2:
			if pk, ok := commitRun(run); ok {
				out = append(out, pk)
			}
			reset()
		}
		prev = p
		havePrev = true
	}
	// A run still open at trajectory end is dropped (no terminating
	// above-threshold record), matching the paper.
	return out
}

// commitRun applies Algorithm 1's three state-transition constraints to a
// completed low-speed run and, if it qualifies, copies it out with its
// centroid.
func commitRun(run mdt.Trajectory) (Pickup, bool) {
	if len(run) < 2 {
		return Pickup{}, false
	}
	start, end := run[0].State, run[len(run)-1].State
	// Constraint 1: passenger-alight events (occupied -> unoccupied).
	if start.Occupied() && end.Unoccupied() {
		return Pickup{}, false
	}
	// Constraint 2: the taxi left for a booking job at another location.
	if start == mdt.Free && end == mdt.OnCall {
		return Pickup{}, false
	}
	// Constraint 3: at least one state transition (filters jams/red lights).
	changed := false
	for i := 1; i < len(run); i++ {
		if run[i].State != run[i-1].State {
			changed = true
			break
		}
	}
	if !changed {
		return Pickup{}, false
	}
	sub := make(mdt.Trajectory, len(run))
	copy(sub, run)
	pts := make([]geo.Point, len(sub))
	for i, r := range sub {
		pts[i] = r.Pos
	}
	return Pickup{Sub: sub, Centroid: geo.Centroid(pts)}, true
}

// ExtractAll runs PEA over every taxi's trajectory and returns the combined
// multi-taxi pickup set W (Definition 4), flattened in ascending taxi-ID
// order so downstream clustering is deterministic.
func ExtractAll(byTaxi map[string]mdt.Trajectory, speedThresholdKmh float64) []Pickup {
	return extractAllSeq(byTaxi, sortedTaxiIDs(byTaxi), speedThresholdKmh)
}

// sortedTaxiIDs returns byTaxi's keys in ascending order.
func sortedTaxiIDs(byTaxi map[string]mdt.Trajectory) []string {
	ids := make([]string, 0, len(byTaxi))
	for id := range byTaxi {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// extractAllSeq is the sequential PEA loop over a pre-sorted ID list, shared
// by ExtractAll and ExtractAllParallel's small-input fallback.
func extractAllSeq(byTaxi map[string]mdt.Trajectory, ids []string, speedThresholdKmh float64) []Pickup {
	var out []Pickup
	for _, id := range ids {
		out = append(out, ExtractPickups(byTaxi[id], speedThresholdKmh)...)
	}
	return out
}
