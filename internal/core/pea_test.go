package core

import (
	"testing"
	"time"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

var t0 = time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)

var spotPos = geo.Point{Lat: 1.3040, Lon: 103.8330}

// traj builds a trajectory from (secondsOffset, speed, state) triples at
// spotPos.
func traj(steps ...[3]float64) mdt.Trajectory {
	tr := make(mdt.Trajectory, len(steps))
	for i, s := range steps {
		tr[i] = mdt.Record{
			Time:   t0.Add(time.Duration(s[0]) * time.Second),
			TaxiID: "SH0001A",
			Pos:    spotPos,
			Speed:  s[1],
			State:  mdt.State(s[2]),
		}
	}
	return tr
}

func st(s mdt.State) float64 { return float64(s) }

func TestPEAExtractsSlowStreetPickup(t *testing.T) {
	// approach fast, crawl FREE x3, POB slow, depart fast.
	tr := traj(
		[3]float64{0, 35, st(mdt.Free)},
		[3]float64{60, 5, st(mdt.Free)},
		[3]float64{100, 3, st(mdt.Free)},
		[3]float64{140, 2, st(mdt.Free)},
		[3]float64{180, 4, st(mdt.POB)},
		[3]float64{240, 30, st(mdt.POB)},
	)
	got := ExtractPickups(tr, 10)
	if len(got) != 1 {
		t.Fatalf("extracted %d pickups, want 1", len(got))
	}
	sub := got[0].Sub
	if len(sub) != 4 {
		t.Fatalf("sub-trajectory has %d records, want 4 (crawl+POB)", len(sub))
	}
	if sub[0].State != mdt.Free || sub[len(sub)-1].State != mdt.POB {
		t.Fatalf("sub-trajectory states wrong: %v..%v", sub[0].State, sub[len(sub)-1].State)
	}
	for _, r := range sub {
		if r.Speed > 10 {
			t.Fatalf("sub-trajectory contains high-speed record %v", r.Speed)
		}
	}
	if d := geo.Equirect(got[0].Centroid, spotPos); d > 1 {
		t.Fatalf("centroid %.2f m from spot", d)
	}
}

func TestPEARejectsTrafficJam(t *testing.T) {
	// Low-speed run with no state change (rule 3).
	tr := traj(
		[3]float64{0, 30, st(mdt.Free)},
		[3]float64{60, 4, st(mdt.Free)},
		[3]float64{100, 2, st(mdt.Free)},
		[3]float64{140, 3, st(mdt.Free)},
		[3]float64{200, 35, st(mdt.Free)},
	)
	if got := ExtractPickups(tr, 10); len(got) != 0 {
		t.Fatalf("jam extracted as pickup: %d", len(got))
	}
}

func TestPEARejectsDropoff(t *testing.T) {
	// Occupied -> unoccupied (rule 1: passenger alight).
	tr := traj(
		[3]float64{0, 30, st(mdt.POB)},
		[3]float64{60, 2, st(mdt.Payment)},
		[3]float64{100, 1, st(mdt.Free)},
		[3]float64{160, 30, st(mdt.Free)},
	)
	if got := ExtractPickups(tr, 10); len(got) != 0 {
		t.Fatalf("dropoff extracted as pickup: %d", len(got))
	}
}

func TestPEARejectsLeaveForBooking(t *testing.T) {
	// FREE -> ONCALL (rule 2: taxi leaves for a booking elsewhere).
	tr := traj(
		[3]float64{0, 30, st(mdt.Free)},
		[3]float64{60, 4, st(mdt.Free)},
		[3]float64{100, 3, st(mdt.OnCall)},
		[3]float64{160, 35, st(mdt.OnCall)},
	)
	if got := ExtractPickups(tr, 10); len(got) != 0 {
		t.Fatalf("FREE->ONCALL leave extracted as pickup: %d", len(got))
	}
}

func TestPEAExtractsBookingPickup(t *testing.T) {
	// ARRIVED crawl then POB: a booking pickup at the spot.
	tr := traj(
		[3]float64{0, 30, st(mdt.OnCall)},
		[3]float64{120, 3, st(mdt.Arrived)},
		[3]float64{180, 0, st(mdt.Arrived)},
		[3]float64{240, 4, st(mdt.POB)},
		[3]float64{300, 30, st(mdt.POB)},
	)
	got := ExtractPickups(tr, 10)
	if len(got) != 1 {
		t.Fatalf("booking pickup not extracted: %d", len(got))
	}
}

func TestPEAExtractsDropoffThenPickup(t *testing.T) {
	// POB->PAYMENT->FREE->...->POB all at low speed: starts occupied,
	// ends occupied -> rule 1 does not fire; must be extracted.
	tr := traj(
		[3]float64{0, 30, st(mdt.POB)},
		[3]float64{60, 2, st(mdt.Payment)},
		[3]float64{100, 1, st(mdt.Free)},
		[3]float64{160, 2, st(mdt.Free)},
		[3]float64{220, 3, st(mdt.POB)},
		[3]float64{280, 30, st(mdt.POB)},
	)
	got := ExtractPickups(tr, 10)
	if len(got) != 1 {
		t.Fatalf("dropoff-then-pickup not extracted: %d", len(got))
	}
}

func TestPEARequiresTwoConsecutiveLowSpeed(t *testing.T) {
	// Single low-speed record between fast ones (a quick hail): rejected.
	tr := traj(
		[3]float64{0, 30, st(mdt.Free)},
		[3]float64{60, 8, st(mdt.Free)},
		[3]float64{90, 25, st(mdt.POB)},
		[3]float64{150, 35, st(mdt.POB)},
	)
	if got := ExtractPickups(tr, 10); len(got) != 0 {
		t.Fatalf("quick hail extracted: %d", len(got))
	}
}

func TestPEANonOperationalResets(t *testing.T) {
	// BREAK inside the crawl kills the run even with a state change.
	tr := traj(
		[3]float64{0, 4, st(mdt.Free)},
		[3]float64{60, 3, st(mdt.Free)},
		[3]float64{100, 0, st(mdt.Break)},
		[3]float64{200, 0, st(mdt.Free)},
		[3]float64{260, 4, st(mdt.POB)},
		[3]float64{320, 30, st(mdt.POB)},
	)
	got := ExtractPickups(tr, 10)
	// After the BREAK reset, FREE(200,0) and POB(260,4) form a new
	// two-record run terminated by the fast POB: FREE->POB, extract.
	if len(got) != 1 {
		t.Fatalf("extracted %d pickups, want 1 (post-break run)", len(got))
	}
	if got[0].Sub[0].Time != t0.Add(200*time.Second) {
		t.Fatalf("run did not restart after BREAK: starts %v", got[0].Sub[0].Time)
	}
}

func TestPEAOpenRunAtEndDropped(t *testing.T) {
	tr := traj(
		[3]float64{0, 4, st(mdt.Free)},
		[3]float64{60, 3, st(mdt.Free)},
		[3]float64{120, 2, st(mdt.POB)},
	)
	if got := ExtractPickups(tr, 10); len(got) != 0 {
		t.Fatalf("unterminated run extracted: %d", len(got))
	}
}

func TestPEAMultiplePickupsOneTrajectory(t *testing.T) {
	var steps [][3]float64
	base := 0.0
	for k := 0; k < 3; k++ {
		steps = append(steps,
			[3]float64{base + 0, 30, st(mdt.Free)},
			[3]float64{base + 60, 4, st(mdt.Free)},
			[3]float64{base + 120, 3, st(mdt.Free)},
			[3]float64{base + 180, 2, st(mdt.POB)},
			[3]float64{base + 240, 30, st(mdt.POB)},
			[3]float64{base + 600, 2, st(mdt.Payment)},
			[3]float64{base + 640, 1, st(mdt.Free)},
			[3]float64{base + 700, 30, st(mdt.Free)},
		)
		base += 900
	}
	got := ExtractPickups(traj(steps...), 10)
	if len(got) != 3 {
		t.Fatalf("extracted %d pickups, want 3", len(got))
	}
}

func TestPEAEmptyAndTinyTrajectories(t *testing.T) {
	if got := ExtractPickups(nil, 10); len(got) != 0 {
		t.Fatal("nil trajectory extracted something")
	}
	one := traj([3]float64{0, 3, st(mdt.Free)})
	if got := ExtractPickups(one, 10); len(got) != 0 {
		t.Fatal("single record extracted something")
	}
}

func TestPEAThresholdBoundary(t *testing.T) {
	// Speeds exactly at the threshold count as low (<= η_sp).
	tr := traj(
		[3]float64{0, 10, st(mdt.Free)},
		[3]float64{60, 10, st(mdt.Free)},
		[3]float64{120, 10, st(mdt.POB)},
		[3]float64{180, 10.1, st(mdt.POB)},
	)
	got := ExtractPickups(tr, 10)
	if len(got) != 1 {
		t.Fatalf("boundary speeds mishandled: %d pickups", len(got))
	}
}

func TestPEADefaultThreshold(t *testing.T) {
	tr := traj(
		[3]float64{0, 5, st(mdt.Free)},
		[3]float64{60, 5, st(mdt.Free)},
		[3]float64{120, 5, st(mdt.POB)},
		[3]float64{180, 40, st(mdt.POB)},
	)
	if got := ExtractPickups(tr, 0); len(got) != 1 {
		t.Fatal("zero threshold did not default to 10 km/h")
	}
}

func TestPEABusyPickupExtractedButNoWait(t *testing.T) {
	// §7.2: BUSY crawl then POB is extracted by PEA (BUSY is not
	// non-operational) but WTE finds no wait start.
	tr := traj(
		[3]float64{0, 4, st(mdt.Busy)},
		[3]float64{60, 3, st(mdt.Busy)},
		[3]float64{120, 2, st(mdt.POB)},
		[3]float64{180, 30, st(mdt.POB)},
	)
	got := ExtractPickups(tr, 10)
	if len(got) != 1 {
		t.Fatalf("BUSY pickup not extracted: %d", len(got))
	}
	if _, ok := ExtractWait(got[0].Sub); ok {
		t.Fatal("WTE produced a wait for a BUSY-only pickup")
	}
}

func TestExtractAllDeterministic(t *testing.T) {
	byTaxi := map[string]mdt.Trajectory{}
	for _, id := range []string{"C", "A", "B"} {
		tr := traj(
			[3]float64{0, 4, st(mdt.Free)},
			[3]float64{60, 3, st(mdt.Free)},
			[3]float64{120, 2, st(mdt.POB)},
			[3]float64{180, 30, st(mdt.POB)},
		)
		for i := range tr {
			tr[i].TaxiID = id
		}
		byTaxi[id] = tr
	}
	a := ExtractAll(byTaxi, 10)
	b := ExtractAll(byTaxi, 10)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("extraction counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Sub[0].TaxiID != b[i].Sub[0].TaxiID {
			t.Fatal("ExtractAll order not deterministic")
		}
	}
	if a[0].Sub[0].TaxiID != "A" || a[2].Sub[0].TaxiID != "C" {
		t.Fatal("ExtractAll not sorted by taxi ID")
	}
}
