package core

import (
	"math"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/geo"
)

var (
	regA = geo.Point{Lat: 1.3000, Lon: 103.8300} // Central
	regB = geo.Point{Lat: 1.3600, Lon: 103.9900} // East
	regC = geo.Point{Lat: 1.3500, Lon: 103.7000} // West
)

func jitterSpot(p geo.Point, dx, dy float64, pickups int) QueueSpot {
	return QueueSpot{Pos: geo.Offset(p, dx, dy), PickupCount: pickups}
}

func TestMergeSpotsConsolidates(t *testing.T) {
	// Spot A appears all 5 days (within a few meters), spot B on 4, spot C
	// only once (sporadic).
	var daily [][]QueueSpot
	for d := 0; d < 5; d++ {
		day := []QueueSpot{jitterSpot(regA, float64(d), -float64(d), 200+d)}
		if d > 0 {
			day = append(day, jitterSpot(regB, -float64(d), float64(d), 300))
		}
		if d == 2 {
			day = append(day, jitterSpot(regC, 0, 0, 80))
		}
		daily = append(daily, day)
	}
	reg := MergeSpots(daily, 20, 3)
	if len(reg) != 3 {
		t.Fatalf("registry has %d spots, want 3", len(reg))
	}
	stable := Stable(reg)
	sporadic := Sporadics(reg)
	if len(stable) != 2 || len(sporadic) != 1 {
		t.Fatalf("stable/sporadic split = %d/%d, want 2/1", len(stable), len(sporadic))
	}
	// The sporadic one is C.
	if geo.Equirect(sporadic[0].Pos, regC) > 5 {
		t.Fatalf("sporadic spot at %v, want near %v", sporadic[0].Pos, regC)
	}
	if sporadic[0].Days != 1 {
		t.Fatalf("sporadic days = %d", sporadic[0].Days)
	}
	// A's consolidated position is the mean of its jittered instances.
	var a *RegistrySpot
	for i := range reg {
		if geo.Equirect(reg[i].Pos, regA) < 10 {
			a = &reg[i]
		}
	}
	if a == nil {
		t.Fatal("spot A missing from registry")
	}
	if a.Days != 5 {
		t.Fatalf("A seen on %d days, want 5", a.Days)
	}
	if math.Abs(a.AvgPickups-202) > 0.001 {
		t.Fatalf("A avg pickups = %g, want 202", a.AvgPickups)
	}
	if a.Zone != citymap.Central {
		t.Fatalf("A zone = %v", a.Zone)
	}
}

func TestMergeSpotsOrdering(t *testing.T) {
	daily := [][]QueueSpot{{
		jitterSpot(regA, 0, 0, 100),
		jitterSpot(regB, 0, 0, 400),
	}}
	reg := MergeSpots(daily, 20, 1)
	if len(reg) != 2 || reg[0].AvgPickups < reg[1].AvgPickups {
		t.Fatalf("registry not ordered by pickups: %+v", reg)
	}
}

func TestMergeSpotsEmpty(t *testing.T) {
	if got := MergeSpots(nil, 20, 1); got != nil {
		t.Fatal("empty input produced spots")
	}
	if got := MergeSpots([][]QueueSpot{{}, {}}, 20, 1); got != nil {
		t.Fatal("empty days produced spots")
	}
}

func TestMergeSpotsDefaults(t *testing.T) {
	daily := [][]QueueSpot{{jitterSpot(regA, 0, 0, 10)}}
	reg := MergeSpots(daily, 0, 0) // defaults: 20 m, minDays 1
	if len(reg) != 1 || reg[0].Sporadic {
		t.Fatalf("defaults mishandled: %+v", reg)
	}
}

func TestBuildDayTypeRegistries(t *testing.T) {
	daySets := map[time.Weekday][]QueueSpot{}
	// Weekday spot at A every weekday; weekend spot at C both weekend days.
	for _, wd := range []time.Weekday{time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday} {
		daySets[wd] = []QueueSpot{jitterSpot(regA, 0, 0, 250)}
	}
	for _, wd := range []time.Weekday{time.Saturday, time.Sunday} {
		daySets[wd] = []QueueSpot{jitterSpot(regA, 0, 0, 150), jitterSpot(regC, 0, 0, 120)}
	}
	regs := BuildDayTypeRegistries(daySets, RegistryConfig{})
	wk := regs[citymap.Weekday]
	we := regs[citymap.Weekend]
	if len(wk) != 1 {
		t.Fatalf("weekday registry has %d spots, want 1", len(wk))
	}
	if wk[0].Days != 5 || wk[0].Sporadic {
		t.Fatalf("weekday spot misaggregated: %+v", wk[0])
	}
	if len(we) != 2 {
		t.Fatalf("weekend registry has %d spots, want 2", len(we))
	}
	for _, s := range we {
		if s.Sporadic {
			t.Fatalf("weekend spot on both days flagged sporadic: %+v", s)
		}
	}
}
