package core

import (
	"runtime"
	"sort"
	"sync"

	"taxiqueue/internal/mdt"
)

// ExtractAllParallel is ExtractAll with the per-taxi PEA fanned out over a
// worker pool. Results are identical to the sequential version (taxis are
// independent; output is concatenated in ascending taxi-ID order).
// workers <= 0 uses GOMAXPROCS.
func ExtractAllParallel(byTaxi map[string]mdt.Trajectory, speedThresholdKmh float64, workers int) []Pickup {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ids := make([]string, 0, len(byTaxi))
	for id := range byTaxi {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if workers == 1 || len(ids) < 2*workers {
		return ExtractAll(byTaxi, speedThresholdKmh)
	}
	perTaxi := make([][]Pickup, len(ids))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perTaxi[i] = ExtractPickups(byTaxi[ids[i]], speedThresholdKmh)
			}
		}()
	}
	for i := range ids {
		next <- i
	}
	close(next)
	wg.Wait()
	total := 0
	for _, ps := range perTaxi {
		total += len(ps)
	}
	out := make([]Pickup, 0, total)
	for _, ps := range perTaxi {
		out = append(out, ps...)
	}
	return out
}
