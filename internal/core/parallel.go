package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"taxiqueue/internal/mdt"
)

// peaChunk is the number of taxi indexes a worker claims per atomic-cursor
// fetch: one shared-counter bump per chunk instead of one channel handoff
// per taxi.
const peaChunk = 16

// peaSerialWork is the record count below which the PEA fan-out is not
// worth its setup: spawning workers, the shared cursor and the per-taxi
// result slices cost more than scanning this many records in place, so
// smaller inputs take the sequential loop even when workers are available.
const peaSerialWork = 4096

// capWorkers clamps a worker request to the scheduler's parallelism:
// workers beyond GOMAXPROCS cannot run simultaneously, so the extra
// goroutines only add contention and scheduling churn. workers <= 0 asks
// for full parallelism.
func capWorkers(workers int) int {
	if p := runtime.GOMAXPROCS(0); workers <= 0 || workers > p {
		return p
	}
	return workers
}

// ExtractAllParallel is ExtractAll with the per-taxi PEA fanned out over a
// worker pool. Results are identical to the sequential version (taxis are
// independent; output is concatenated in ascending taxi-ID order).
// workers <= 0 uses GOMAXPROCS.
func ExtractAllParallel(byTaxi map[string]mdt.Trajectory, speedThresholdKmh float64, workers int) []Pickup {
	workers = capWorkers(workers)
	ids := sortedTaxiIDs(byTaxi)
	if workers == 1 || len(ids) < 2*workers || totalRecords(byTaxi) < peaSerialWork {
		return extractAllSeq(byTaxi, ids, speedThresholdKmh)
	}
	perTaxi := make([][]Pickup, len(ids))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(peaChunk)) - peaChunk
				if lo >= len(ids) {
					return
				}
				for i := lo; i < min(lo+peaChunk, len(ids)); i++ {
					perTaxi[i] = ExtractPickups(byTaxi[ids[i]], speedThresholdKmh)
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, ps := range perTaxi {
		total += len(ps)
	}
	out := make([]Pickup, 0, total)
	for _, ps := range perTaxi {
		out = append(out, ps...)
	}
	return out
}

// totalRecords sums the trajectory lengths — the actual PEA work size,
// which taxi count alone misrepresents when trajectories are short.
func totalRecords(byTaxi map[string]mdt.Trajectory) int {
	total := 0
	for _, tr := range byTaxi {
		total += len(tr)
	}
	return total
}
