package core

import (
	"testing"
	"time"

	"taxiqueue/internal/mdt"
)

func TestWTEStreetWait(t *testing.T) {
	sub := traj(
		[3]float64{0, 4, st(mdt.Free)},
		[3]float64{60, 3, st(mdt.Free)},
		[3]float64{300, 2, st(mdt.POB)},
	)
	w, ok := ExtractWait(sub)
	if !ok {
		t.Fatal("no wait extracted")
	}
	if !w.Street() {
		t.Error("street wait not classified as street")
	}
	if w.Duration() != 300*time.Second {
		t.Fatalf("wait = %v, want 5m", w.Duration())
	}
}

func TestWTEBookingWaitFromArrived(t *testing.T) {
	sub := traj(
		[3]float64{0, 3, st(mdt.Arrived)},
		[3]float64{90, 2, st(mdt.POB)},
	)
	w, ok := ExtractWait(sub)
	if !ok {
		t.Fatal("no wait extracted")
	}
	if w.Street() {
		t.Error("ARRIVED wait classified as street")
	}
	if w.StartState != mdt.Arrived || w.Duration() != 90*time.Second {
		t.Fatalf("wait = %+v", w)
	}
}

func TestWTEPaymentResetsStart(t *testing.T) {
	// Dropoff-then-pickup: the wait must start at the FREE after PAYMENT,
	// not at the initial POB/PAYMENT.
	sub := traj(
		[3]float64{0, 2, st(mdt.POB)},
		[3]float64{40, 1, st(mdt.Payment)},
		[3]float64{100, 1, st(mdt.Free)},
		[3]float64{400, 2, st(mdt.POB)},
	)
	w, ok := ExtractWait(sub)
	if !ok {
		t.Fatal("no wait extracted")
	}
	if w.Start != t0.Add(100*time.Second) {
		t.Fatalf("start = %v, want FREE at +100s", w.Start)
	}
	if w.Duration() != 300*time.Second {
		t.Fatalf("wait = %v, want 5m", w.Duration())
	}
}

func TestWTEPaymentAfterStartRearms(t *testing.T) {
	// FREE ... PAYMENT ... FREE ... POB: the PAYMENT cancels the first
	// start; the wait is measured from the second FREE.
	sub := traj(
		[3]float64{0, 2, st(mdt.Free)},
		[3]float64{50, 1, st(mdt.Payment)},
		[3]float64{120, 1, st(mdt.Free)},
		[3]float64{240, 2, st(mdt.POB)},
	)
	w, ok := ExtractWait(sub)
	if !ok {
		t.Fatal("no wait extracted")
	}
	if w.Start != t0.Add(120*time.Second) || w.Duration() != 120*time.Second {
		t.Fatalf("wait = %+v", w)
	}
}

func TestWTENoPOBNoWait(t *testing.T) {
	sub := traj(
		[3]float64{0, 2, st(mdt.Free)},
		[3]float64{60, 1, st(mdt.Free)},
	)
	if _, ok := ExtractWait(sub); ok {
		t.Fatal("wait extracted without POB")
	}
}

func TestWTEFirstPOBOnlyEndsWait(t *testing.T) {
	sub := traj(
		[3]float64{0, 2, st(mdt.Free)},
		[3]float64{100, 1, st(mdt.POB)},
		[3]float64{200, 2, st(mdt.POB)},
	)
	w, ok := ExtractWait(sub)
	if !ok || w.End != t0.Add(100*time.Second) {
		t.Fatalf("wait end = %v, want first POB", w.End)
	}
}

func TestWTENonNegativeWaits(t *testing.T) {
	sub := traj(
		[3]float64{0, 2, st(mdt.Free)},
		[3]float64{0, 1, st(mdt.POB)}, // same-second pickup
	)
	w, ok := ExtractWait(sub)
	if !ok || w.Duration() < 0 {
		t.Fatalf("negative or missing wait: %+v ok=%v", w, ok)
	}
}

func TestExtractWaitsSkipsWaitless(t *testing.T) {
	pickups := []Pickup{
		{Sub: traj(
			[3]float64{0, 2, st(mdt.Free)},
			[3]float64{60, 1, st(mdt.POB)},
		)},
		{Sub: traj( // BUSY pickup: no wait
			[3]float64{0, 2, st(mdt.Busy)},
			[3]float64{60, 1, st(mdt.POB)},
		)},
	}
	waits := ExtractWaits(pickups)
	if len(waits) != 1 {
		t.Fatalf("waits = %d, want 1", len(waits))
	}
}
