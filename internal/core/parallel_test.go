package core

import (
	"testing"

	"taxiqueue/internal/mdt"
)

func TestExtractAllParallelMatchesSequential(t *testing.T) {
	day := simDay(t)
	byTaxi := mdt.SplitByTaxi(day.cleaned)
	seq := ExtractAll(byTaxi, DefaultSpeedThresholdKmh)
	for _, workers := range []int{0, 2, 4, 7} {
		par := ExtractAllParallel(byTaxi, DefaultSpeedThresholdKmh, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d pickups, sequential %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if len(par[i].Sub) != len(seq[i].Sub) || par[i].Centroid != seq[i].Centroid {
				t.Fatalf("workers=%d: pickup %d differs", workers, i)
			}
		}
	}
}

// TestExtractAllParallelSmallInputTakesSerialPath: a fleet of many taxis
// with tiny trajectories clears the 2*workers taxi-count gate but not the
// work threshold — the serial fallback must still produce the sequential
// result exactly (and, per the threshold's purpose, without the fan-out;
// correctness is what is asserted here).
func TestExtractAllParallelSmallInputTakesSerialPath(t *testing.T) {
	day := simDay(t)
	byTaxi := mdt.SplitByTaxi(day.cleaned)
	small := make(map[string]mdt.Trajectory, len(byTaxi))
	total := 0
	for id, tr := range byTaxi {
		if len(tr) > 8 {
			tr = tr[:8]
		}
		small[id] = tr
		total += len(tr)
	}
	if total >= peaSerialWork {
		t.Skipf("fixture too large to stay under the work threshold: %d records", total)
	}
	seq := ExtractAll(small, DefaultSpeedThresholdKmh)
	par := ExtractAllParallel(small, DefaultSpeedThresholdKmh, 8)
	if len(par) != len(seq) {
		t.Fatalf("below-threshold input: %d pickups, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if len(par[i].Sub) != len(seq[i].Sub) || par[i].Centroid != seq[i].Centroid {
			t.Fatalf("below-threshold input: pickup %d differs", i)
		}
	}
}

func TestEngineParallelMatchesSequential(t *testing.T) {
	day := simDay(t)
	mk := func(workers int) *Result {
		cfg := DefaultEngineConfig()
		cfg.Detector.Cluster.MinPoints = 30
		cfg.Parallelism = workers
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Analyze(day.cleaned)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := mk(1)
	par := mk(0)
	if len(seq.Spots) != len(par.Spots) {
		t.Fatalf("spot counts differ: %d vs %d", len(seq.Spots), len(par.Spots))
	}
	for i := range seq.Spots {
		if seq.Spots[i].Spot != par.Spots[i].Spot {
			t.Fatalf("spot %d differs", i)
		}
		if seq.Spots[i].Thresholds != par.Spots[i].Thresholds {
			t.Fatalf("spot %d thresholds differ", i)
		}
		for j := range seq.Spots[i].Labels {
			if seq.Spots[i].Labels[j] != par.Spots[i].Labels[j] {
				t.Fatalf("spot %d slot %d label differs", i, j)
			}
		}
	}
}
