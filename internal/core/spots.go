package core

import (
	"fmt"
	"sort"
	"sync"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/spatial"
)

// QueueSpot is one detected queue location: the centroid of a DBSCAN
// cluster of pickup-event locations (§4.3).
type QueueSpot struct {
	// Pos is the cluster centroid.
	Pos geo.Point
	// Zone is the Fig. 5 analysis zone containing the spot.
	Zone citymap.Zone
	// PickupCount is the number of pickup events in the cluster.
	PickupCount int
}

// String implements fmt.Stringer.
func (q QueueSpot) String() string {
	return fmt.Sprintf("spot%v %s (%d pickups)", q.Pos, q.Zone, q.PickupCount)
}

// DetectorConfig parameterizes queue-spot detection.
type DetectorConfig struct {
	// Cluster holds the DBSCAN ε_d/p_d pair; the paper settles on 15 m and
	// 50 points for daily datasets (§6.1.2).
	Cluster cluster.Params
	// ByZone splits the island into the four Fig. 5 zones and clusters
	// each independently — the paper's mitigation for DBSCAN's O(n²) cost.
	ByZone bool
	// Parallelism fans the per-zone loop and DBSCAN itself over a worker
	// pool; 0 uses GOMAXPROCS, 1 forces the sequential path. Results are
	// identical at any setting.
	Parallelism int
}

// DefaultDetectorConfig returns the paper's settings.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		Cluster: cluster.Params{EpsMeters: 15, MinPoints: 50},
		ByZone:  true,
	}
}

// DetectSpots clusters the pickup centroids and returns the queue spots,
// ordered by descending pickup count (ties broken by position for
// determinism).
func DetectSpots(pickups []Pickup, cfg DetectorConfig) ([]QueueSpot, error) {
	workers := capWorkers(cfg.Parallelism)
	pts := make([]geo.Point, len(pickups))
	for i, p := range pickups {
		pts[i] = p.Centroid
	}
	var spots []QueueSpot
	if cfg.ByZone {
		// Partition the GPS location set C into the four zone subsets
		// (§6.1.2): count, then carve one pre-sized backing array into
		// per-zone sub-slices instead of growing four append targets.
		zoneIDs := make([]uint8, len(pts))
		var counts [citymap.NumZones]int
		for i, p := range pts {
			z := citymap.ZoneOf(p)
			zoneIDs[i] = uint8(z)
			counts[z]++
		}
		backing := make([]geo.Point, len(pts))
		var start [citymap.NumZones + 1]int
		for z := 0; z < citymap.NumZones; z++ {
			start[z+1] = start[z] + counts[z]
		}
		cursor := start
		for i, p := range pts {
			z := zoneIDs[i]
			backing[cursor[z]] = p
			cursor[z]++
		}
		// Cluster the four zones concurrently; each zone's DBSCAN further
		// parallelizes internally when the zone is large enough.
		var perZone [citymap.NumZones][]QueueSpot
		var errs [citymap.NumZones]error
		runZone := func(z int) {
			perZone[z], errs[z] = clusterZone(backing[start[z]:start[z+1]], citymap.Zone(z), cfg.Cluster, workers)
		}
		if workers == 1 {
			for z := 0; z < citymap.NumZones; z++ {
				runZone(z)
			}
		} else {
			var wg sync.WaitGroup
			for z := 0; z < citymap.NumZones; z++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					runZone(z)
				}()
			}
			wg.Wait()
		}
		for z := 0; z < citymap.NumZones; z++ {
			if errs[z] != nil {
				return nil, errs[z]
			}
			spots = append(spots, perZone[z]...)
		}
	} else {
		zs, err := clusterZone(pts, 0, cfg.Cluster, workers)
		if err != nil {
			return nil, err
		}
		// Re-derive each spot's true zone when clustering island-wide.
		for i := range zs {
			zs[i].Zone = citymap.ZoneOf(zs[i].Pos)
		}
		spots = zs
	}
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].PickupCount != spots[j].PickupCount {
			return spots[i].PickupCount > spots[j].PickupCount
		}
		if spots[i].Pos.Lat != spots[j].Pos.Lat {
			return spots[i].Pos.Lat < spots[j].Pos.Lat
		}
		return spots[i].Pos.Lon < spots[j].Pos.Lon
	})
	return spots, nil
}

func clusterZone(pts []geo.Point, zone citymap.Zone, p cluster.Params, workers int) ([]QueueSpot, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	res, err := cluster.DBSCANParallel(pts, p, workers)
	if err != nil {
		return nil, err
	}
	cents := res.Centroids(pts)
	sizes := res.ClusterSizes()
	spots := make([]QueueSpot, len(cents))
	for i := range cents {
		spots[i] = QueueSpot{Pos: cents[i], Zone: zone, PickupCount: sizes[i]}
	}
	return spots, nil
}

// AssignPickups builds the per-spot pickup-event sets W(r): each pickup is
// assigned to the nearest detected spot within maxMeters of its centroid;
// pickups with no spot in range are dropped (they are scatter noise).
// The result is indexed like spots.
func AssignPickups(pickups []Pickup, spots []QueueSpot, maxMeters float64) [][]Pickup {
	out := make([][]Pickup, len(spots))
	if len(spots) == 0 {
		return out
	}
	pts := make([]geo.Point, len(spots))
	for i, s := range spots {
		pts[i] = s.Pos
	}
	idx := spatial.NewGrid(pts, maxMeters)
	var buf []int
	for _, p := range pickups {
		buf = idx.Within(p.Centroid, maxMeters, buf[:0])
		best := -1
		bestD := maxMeters + 1
		for _, id := range buf {
			if d := geo.Equirect(p.Centroid, pts[id]); d < bestD {
				best, bestD = id, d
			}
		}
		if best >= 0 {
			out[best] = append(out[best], p)
		}
	}
	return out
}

// SpotPositions extracts the coordinate set of a spot list (the input to
// the Table 5 Hausdorff comparison).
func SpotPositions(spots []QueueSpot) []geo.Point {
	pts := make([]geo.Point, len(spots))
	for i, s := range spots {
		pts[i] = s.Pos
	}
	return pts
}
