package core

import (
	"time"

	"taxiqueue/internal/mdt"
)

// Wait is one taxi wait interval extracted from a pickup sub-trajectory by
// the Wait Time Extraction algorithm (Algorithm 2).
type Wait struct {
	// Start is the wait start time: the timestamp of the first FREE,
	// ONCALL or ARRIVED record (re-armed after any PAYMENT).
	Start time.Time
	// End is the wait end time: the timestamp of the first POB record
	// after Start.
	End time.Time
	// StartState is the state that set Start; FREE identifies a street
	// job, ONCALL/ARRIVED a booking job (§5.2 uses street jobs only for
	// the average wait).
	StartState mdt.State
}

// Duration returns the wait time t_end - t_start.
func (w Wait) Duration() time.Duration { return w.End.Sub(w.Start) }

// Street reports whether the wait belongs to a street job (Start set by a
// FREE record).
func (w Wait) Street() bool { return w.StartState == mdt.Free }

// ExtractWait is the Wait Time Extraction algorithm (Algorithm 2) on a
// single pickup sub-trajectory: ok is false when no valid (start, end) pair
// exists.
func ExtractWait(sub mdt.Trajectory) (Wait, bool) {
	var w Wait
	started, ended := false, false
	for _, p := range sub {
		switch {
		case (p.State == mdt.Free || p.State == mdt.OnCall || p.State == mdt.Arrived) && !started:
			w.Start = p.Time
			w.StartState = p.State
			started = true
		case p.State == mdt.Payment && started:
			// A payment inside the run means the earlier "wait" was the
			// tail of the previous job: re-arm.
			started, ended = false, false
		case p.State == mdt.POB && started && !ended:
			w.End = p.Time
			ended = true
		}
	}
	if !started || !ended {
		return Wait{}, false
	}
	return w, true
}

// ExtractWaits runs WTE over a spot's pickup-event set W(r) and returns the
// taxi wait set Y(r), in input order.
func ExtractWaits(pickups []Pickup) []Wait {
	out := make([]Wait, 0, len(pickups))
	for _, p := range pickups {
		if w, ok := ExtractWait(p.Sub); ok {
			out = append(out, w)
		}
	}
	return out
}
