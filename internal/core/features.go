package core

import (
	"sort"
	"time"
)

// SlotFeatures is the 5-tuple φ(r)ʲ of §5.2 describing one time slot at one
// queue spot, plus bookkeeping used by threshold selection.
type SlotFeatures struct {
	// TWait is t̄wait: the mean street-job wait time over the slot.
	TWait time.Duration
	// NArr is N_arr: the number of FREE-taxi arrivals (street-job waits
	// whose Start falls in the slot), after amplification.
	NArr float64
	// QLen is L̄: the Little's-Law FREE-taxi queue length estimate
	// t̄wait · λ̄ where λ̄ = N_arr / slot length.
	QLen float64
	// TDep is t̄dep: the mean interval between consecutive departures
	// (street + booking) in the slot, after amplification.
	TDep time.Duration
	// NDep is N_dep: the number of departures in the slot, after
	// amplification.
	NDep float64
	// StreetDepartures/BookingDepartures split NDep's raw counts by job
	// kind (needed for the zone street-job ratio τ_ratio).
	StreetDepartures  int
	BookingDepartures int
}

// Amplification holds the §6.2.1 dataset-coverage correction: the operator
// feed covers only a fraction of the fleet, so count features are scaled up
// by Factor = 1/coverage and the departure interval down by coverage.
type Amplification struct {
	// Factor multiplies N_arr, L̄ and N_dep (1.667 in the paper).
	Factor float64
	// IntervalFactor multiplies t̄dep (0.6 in the paper).
	IntervalFactor float64
}

// PaperAmplification is the §6.2.1 setting for a 60%-coverage dataset.
var PaperAmplification = Amplification{Factor: 1.667, IntervalFactor: 0.6}

// NoAmplification leaves features unscaled (full-coverage datasets).
var NoAmplification = Amplification{Factor: 1, IntervalFactor: 1}

// DefaultSlotLength is the paper's slot size: 48 slots of 1800 s per day
// (§6.2.1).
const DefaultSlotLength = 30 * time.Minute

// SlotGrid fixes the time-slot partition [start, start+L·slotLen).
type SlotGrid struct {
	Start   time.Time
	SlotLen time.Duration
	Slots   int
}

// DaySlots returns the paper's 48×30-minute grid for the day beginning at
// midnight t.
func DaySlots(midnight time.Time) SlotGrid {
	return SlotGrid{Start: midnight, SlotLen: DefaultSlotLength, Slots: 48}
}

// Index returns the slot index for t, or -1 when t is outside the grid.
func (g SlotGrid) Index(t time.Time) int {
	if t.Before(g.Start) {
		return -1
	}
	j := int(t.Sub(g.Start) / g.SlotLen)
	if j >= g.Slots {
		return -1
	}
	return j
}

// Bounds returns slot j's [from, to) interval.
func (g SlotGrid) Bounds(j int) (from, to time.Time) {
	from = g.Start.Add(time.Duration(j) * g.SlotLen)
	return from, from.Add(g.SlotLen)
}

// ComputeFeatures derives the per-slot 5-tuples Ω(r) from a spot's wait set
// Y(r). Street-job waits provide the arrival features; all departures
// provide the departure features, matching §5.2 exactly.
func ComputeFeatures(waits []Wait, grid SlotGrid, amp Amplification) []SlotFeatures {
	if amp.Factor == 0 {
		amp = NoAmplification
	}
	feats := make([]SlotFeatures, grid.Slots)
	waitSum := make([]time.Duration, grid.Slots)
	waitN := make([]int, grid.Slots)
	departures := make([][]time.Time, grid.Slots)

	for _, w := range waits {
		if w.Street() {
			if j := grid.Index(w.Start); j >= 0 {
				waitSum[j] += w.Duration()
				waitN[j]++
			}
		}
		if j := grid.Index(w.End); j >= 0 {
			departures[j] = append(departures[j], w.End)
			if w.Street() {
				feats[j].StreetDepartures++
			} else {
				feats[j].BookingDepartures++
			}
		}
	}

	slotSec := grid.SlotLen.Seconds()
	for j := range feats {
		f := &feats[j]
		if waitN[j] > 0 {
			f.TWait = waitSum[j] / time.Duration(waitN[j])
		}
		f.NArr = float64(waitN[j]) * amp.Factor
		lambda := f.NArr / slotSec
		f.QLen = f.TWait.Seconds() * lambda
		deps := departures[j]
		sort.Slice(deps, func(a, b int) bool { return deps[a].Before(deps[b]) })
		if len(deps) > 1 {
			total := deps[len(deps)-1].Sub(deps[0])
			mean := total / time.Duration(len(deps)-1)
			f.TDep = time.Duration(float64(mean) * amp.IntervalFactor)
		}
		f.NDep = float64(len(deps)) * amp.Factor
	}
	return feats
}

// DepartureIntervals returns every consecutive within-slot departure
// interval for a spot's waits (raw, unamplified); threshold selection uses
// the shortest 20% of these.
func DepartureIntervals(waits []Wait, grid SlotGrid) []time.Duration {
	departures := make([][]time.Time, grid.Slots)
	for _, w := range waits {
		if j := grid.Index(w.End); j >= 0 {
			departures[j] = append(departures[j], w.End)
		}
	}
	var out []time.Duration
	for _, deps := range departures {
		sort.Slice(deps, func(a, b int) bool { return deps[a].Before(deps[b]) })
		for i := 1; i < len(deps); i++ {
			out = append(out, deps[i].Sub(deps[i-1]))
		}
	}
	return out
}
