package core

import (
	"math"
	"testing"
	"time"

	"taxiqueue/internal/mdt"
)

func midnight() time.Time { return time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC) }

// streetWait fabricates a street wait starting at start lasting d.
func streetWait(start time.Time, d time.Duration) Wait {
	return Wait{Start: start, End: start.Add(d), StartState: mdt.Free}
}

func bookingWait(start time.Time, d time.Duration) Wait {
	return Wait{Start: start, End: start.Add(d), StartState: mdt.Arrived}
}

func TestSlotGridIndex(t *testing.T) {
	g := DaySlots(midnight())
	if g.Slots != 48 || g.SlotLen != 30*time.Minute {
		t.Fatalf("grid = %+v", g)
	}
	cases := []struct {
		at   time.Time
		want int
	}{
		{midnight(), 0},
		{midnight().Add(29 * time.Minute), 0},
		{midnight().Add(30 * time.Minute), 1},
		{midnight().Add(18*time.Hour + 30*time.Minute), 37},
		{midnight().Add(24*time.Hour - time.Second), 47},
		{midnight().Add(24 * time.Hour), -1},
		{midnight().Add(-time.Second), -1},
	}
	for _, c := range cases {
		if got := g.Index(c.at); got != c.want {
			t.Errorf("Index(%v) = %d, want %d", c.at, got, c.want)
		}
	}
	from, to := g.Bounds(37)
	if from != midnight().Add(18*time.Hour+30*time.Minute) || to.Sub(from) != 30*time.Minute {
		t.Errorf("Bounds(37) = %v..%v", from, to)
	}
}

func TestComputeFeaturesBasic(t *testing.T) {
	g := DaySlots(midnight())
	slotStart := midnight().Add(9 * time.Hour) // slot 18
	var waits []Wait
	// 6 street waits of 2 minutes each, starting within the slot.
	for i := 0; i < 6; i++ {
		waits = append(waits, streetWait(slotStart.Add(time.Duration(i)*4*time.Minute), 2*time.Minute))
	}
	feats := ComputeFeatures(waits, g, NoAmplification)
	f := feats[18]
	if f.NArr != 6 {
		t.Fatalf("NArr = %g, want 6", f.NArr)
	}
	if f.TWait != 2*time.Minute {
		t.Fatalf("TWait = %v, want 2m", f.TWait)
	}
	// L̄ = t̄wait * λ̄ = 120 s * (6/1800 s) = 0.4.
	if math.Abs(f.QLen-0.4) > 1e-9 {
		t.Fatalf("QLen = %g, want 0.4", f.QLen)
	}
	// Departures every 4 minutes: mean interval 4m over 5 gaps.
	if f.NDep != 6 {
		t.Fatalf("NDep = %g, want 6", f.NDep)
	}
	if f.TDep != 4*time.Minute {
		t.Fatalf("TDep = %v, want 4m", f.TDep)
	}
	if f.StreetDepartures != 6 || f.BookingDepartures != 0 {
		t.Fatalf("departure split %d/%d", f.StreetDepartures, f.BookingDepartures)
	}
}

func TestComputeFeaturesBookingExcludedFromArrivals(t *testing.T) {
	g := DaySlots(midnight())
	slotStart := midnight().Add(12 * time.Hour)
	waits := []Wait{
		streetWait(slotStart, time.Minute),
		bookingWait(slotStart.Add(2*time.Minute), time.Minute),
		bookingWait(slotStart.Add(4*time.Minute), time.Minute),
	}
	f := ComputeFeatures(waits, g, NoAmplification)[24]
	if f.NArr != 1 {
		t.Fatalf("NArr = %g, want 1 (street only)", f.NArr)
	}
	if f.NDep != 3 {
		t.Fatalf("NDep = %g, want 3 (street + booking)", f.NDep)
	}
	if f.BookingDepartures != 2 {
		t.Fatalf("BookingDepartures = %d", f.BookingDepartures)
	}
}

func TestComputeFeaturesAmplification(t *testing.T) {
	g := DaySlots(midnight())
	slotStart := midnight()
	waits := []Wait{
		streetWait(slotStart.Add(time.Minute), 2*time.Minute),
		streetWait(slotStart.Add(5*time.Minute), 2*time.Minute),
		streetWait(slotStart.Add(9*time.Minute), 2*time.Minute),
	}
	raw := ComputeFeatures(waits, g, NoAmplification)[0]
	amp := ComputeFeatures(waits, g, PaperAmplification)[0]
	if math.Abs(amp.NArr-raw.NArr*1.667) > 1e-9 {
		t.Errorf("NArr amplification: %g vs %g", amp.NArr, raw.NArr)
	}
	if math.Abs(amp.NDep-raw.NDep*1.667) > 1e-9 {
		t.Errorf("NDep amplification: %g vs %g", amp.NDep, raw.NDep)
	}
	if math.Abs(float64(amp.TDep)-float64(raw.TDep)*0.6) > 1 {
		t.Errorf("TDep dampening: %v vs %v", amp.TDep, raw.TDep)
	}
	// TWait is not amplified.
	if amp.TWait != raw.TWait {
		t.Errorf("TWait changed by amplification")
	}
	// QLen scales with NArr.
	if math.Abs(amp.QLen-raw.QLen*1.667) > 1e-9 {
		t.Errorf("QLen amplification: %g vs %g", amp.QLen, raw.QLen)
	}
}

func TestComputeFeaturesCrossSlotWait(t *testing.T) {
	// A wait starting in slot 0 and ending in slot 1 contributes its
	// arrival to slot 0 and its departure to slot 1.
	g := DaySlots(midnight())
	w := streetWait(midnight().Add(25*time.Minute), 10*time.Minute)
	feats := ComputeFeatures([]Wait{w}, g, NoAmplification)
	if feats[0].NArr != 1 || feats[0].NDep != 0 {
		t.Fatalf("slot 0 = %+v", feats[0])
	}
	if feats[1].NDep != 1 || feats[1].NArr != 0 {
		t.Fatalf("slot 1 = %+v", feats[1])
	}
}

func TestComputeFeaturesEmpty(t *testing.T) {
	g := DaySlots(midnight())
	feats := ComputeFeatures(nil, g, PaperAmplification)
	if len(feats) != 48 {
		t.Fatalf("feature count %d", len(feats))
	}
	for j, f := range feats {
		if f.NArr != 0 || f.NDep != 0 || f.QLen != 0 || f.TWait != 0 || f.TDep != 0 {
			t.Fatalf("slot %d non-zero: %+v", j, f)
		}
	}
}

func TestDepartureIntervalsWithinSlotOnly(t *testing.T) {
	g := DaySlots(midnight())
	// Two departures in slot 0, one in slot 1: one interval (in slot 0);
	// the cross-slot gap must not appear.
	waits := []Wait{
		streetWait(midnight().Add(1*time.Minute), time.Minute),  // ends 0:02
		streetWait(midnight().Add(10*time.Minute), time.Minute), // ends 0:11
		streetWait(midnight().Add(31*time.Minute), time.Minute), // ends 0:32 (slot 1)
	}
	ivs := DepartureIntervals(waits, g)
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v, want 1 entry", ivs)
	}
	if ivs[0] != 9*time.Minute {
		t.Fatalf("interval = %v, want 9m", ivs[0])
	}
}

func TestLittleLawConsistencyWithQueueingPackage(t *testing.T) {
	// The QLen feature must equal queueing.Little applied to the same
	// inputs (shared definition).
	g := DaySlots(midnight())
	var waits []Wait
	for i := 0; i < 10; i++ {
		waits = append(waits, streetWait(midnight().Add(time.Duration(i)*3*time.Minute), 5*time.Minute))
	}
	f := ComputeFeatures(waits, g, NoAmplification)[0]
	lambda := f.NArr / g.SlotLen.Seconds()
	want := lambda * f.TWait.Seconds()
	if math.Abs(f.QLen-want) > 1e-9 {
		t.Fatalf("QLen = %g, Little gives %g", f.QLen, want)
	}
}
