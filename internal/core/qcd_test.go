package core

import (
	"math"
	"testing"
	"time"

	"taxiqueue/internal/mdt"
)

// th is a hand-built threshold set for direct Classify tests.
func testThresholds() Thresholds {
	return Thresholds{
		EtaWait:  60 * time.Second,
		EtaDep:   60 * time.Second,
		TauArr:   30,
		TauDep:   30,
		EtaDur:   27 * time.Minute,
		TauRatio: 0.84,
	}
}

func TestClassifyRoutine1(t *testing.T) {
	th := testThresholds()
	cases := []struct {
		name string
		f    SlotFeatures
		want QueueType
	}{
		{"C2: no taxi queue, many fast arrivals",
			SlotFeatures{QLen: 0.5, NArr: 40, TWait: 30 * time.Second, NDep: 40, TDep: 45 * time.Second}, C2},
		{"C4: no taxi queue, few slow arrivals",
			SlotFeatures{QLen: 0.2, NArr: 3, TWait: 10 * time.Minute, NDep: 3, TDep: 8 * time.Minute}, C4},
		{"C1: taxi queue, many fast departures",
			SlotFeatures{QLen: 3, NArr: 35, TWait: 4 * time.Minute, NDep: 40, TDep: 40 * time.Second}, C1},
		{"C3: taxi queue, few slow departures",
			SlotFeatures{QLen: 2, NArr: 5, TWait: 15 * time.Minute, NDep: 5, TDep: 5 * time.Minute}, C3},
		{"empty slot stays unidentified",
			SlotFeatures{}, Unidentified},
		{"mixed signals stay unidentified (no routine 2 escape)",
			SlotFeatures{QLen: 0.5, NArr: 40, TWait: 10 * time.Minute, NDep: 2, TDep: time.Minute}, Unidentified},
	}
	for _, c := range cases {
		got := Classify([]SlotFeatures{c.f}, th)[0]
		if got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyRoutine2BookingHeavy(t *testing.T) {
	th := testThresholds()
	// Moderate departures spanning most of the slot, with a low
	// FREE-arrival share (booking-dominated): C2 without a taxi queue,
	// C1 with one.
	// TWait below η_wait keeps routine 1's C4 arm from firing first.
	base := SlotFeatures{
		NArr: 6, NDep: 20, TDep: 85 * time.Second, // span = 20*85s = 1700s > 1620s
		TWait: 30 * time.Second,
	}
	noQueue := base
	noQueue.QLen = 0.6
	if got := Classify([]SlotFeatures{noQueue}, th)[0]; got != C2 {
		t.Errorf("routine 2 without taxi queue: got %v, want C2", got)
	}
	withQueue := base
	withQueue.QLen = 1.8
	// With QLen >= 1 routine 1 runs first: NDep=20 < TauDep=30 and
	// TDep=85s >= EtaDep=60s -> C3 by routine 1. Make TDep below EtaDep to
	// dodge routine 1's C3 arm, then routine 2 fires.
	withQueue.TDep = 59 * time.Second
	withQueue.NDep = 28 // 28 < 30: routine 1 C1 arm fails
	// span = 28 * 59s = 1652s > 1620s, NArr/NDep = 6/28 < 0.84.
	if got := Classify([]SlotFeatures{withQueue}, th)[0]; got != C1 {
		t.Errorf("routine 2 with taxi queue: got %v, want C1", got)
	}
}

func TestClassifyRoutine2RequiresSpanAndRatio(t *testing.T) {
	th := testThresholds()
	// Short departure span: stays unidentified.
	shortSpan := SlotFeatures{QLen: 0.5, NArr: 2, NDep: 5, TDep: 70 * time.Second, TWait: 30 * time.Second}
	if got := Classify([]SlotFeatures{shortSpan}, th)[0]; got != Unidentified {
		t.Errorf("short span: got %v, want Unidentified", got)
	}
	// High street ratio (mostly FREE arrivals): stays unidentified.
	highRatio := SlotFeatures{QLen: 0.5, NArr: 25, NDep: 26, TDep: 65 * time.Second, TWait: 30 * time.Second}
	if got := Classify([]SlotFeatures{highRatio}, th)[0]; got != Unidentified {
		t.Errorf("high street ratio: got %v, want Unidentified", got)
	}
}

func TestSelectThresholds(t *testing.T) {
	g := DaySlots(midnight())
	var waits []Wait
	// 10 street waits: 30s, 60s, ..., 300s. Top 20% shortest = {30s, 60s}
	// -> η_wait = 45s.
	for i := 1; i <= 10; i++ {
		waits = append(waits, streetWait(
			midnight().Add(time.Duration(i)*37*time.Minute),
			time.Duration(i)*30*time.Second))
	}
	th := SelectThresholds(ComputeFeatures(waits, g, NoAmplification), g, 0.84)
	if th.EtaWait != 45*time.Second {
		t.Fatalf("EtaWait = %v, want 45s", th.EtaWait)
	}
	if math.Abs(th.TauArr-40) > 1e-9 {
		t.Fatalf("TauArr = %g, want 40 (1800/45)", th.TauArr)
	}
	if th.EtaDur != time.Duration(0.9*float64(30*time.Minute)) {
		t.Fatalf("EtaDur = %v", th.EtaDur)
	}
	if th.TauRatio != 0.84 {
		t.Fatalf("TauRatio = %g", th.TauRatio)
	}
}

func TestSelectThresholdsFloorsDegenerate(t *testing.T) {
	g := DaySlots(midnight())
	// All waits are 1 s: without the floor τ_arr would explode.
	var waits []Wait
	for i := 0; i < 5; i++ {
		waits = append(waits, streetWait(midnight().Add(time.Duration(i)*time.Hour), time.Second))
	}
	th := SelectThresholds(ComputeFeatures(waits, g, NoAmplification), g, 1)
	if th.EtaWait < minEta {
		t.Fatalf("EtaWait = %v below floor", th.EtaWait)
	}
	empty := SelectThresholds(nil, g, 1)
	if empty.EtaWait < minEta || empty.EtaDep < minEta {
		t.Fatalf("empty thresholds below floor: %+v", empty)
	}
}

func TestStreetJobRatio(t *testing.T) {
	feats := []SlotFeatures{
		{StreetDepartures: 8, BookingDepartures: 2},
		{StreetDepartures: 4, BookingDepartures: 2},
	}
	if r := StreetJobRatio(feats); math.Abs(r-0.75) > 1e-9 {
		t.Fatalf("ratio = %g, want 0.75", r)
	}
	if r := StreetJobRatio(nil); r != 1 {
		t.Fatalf("empty ratio = %g, want 1", r)
	}
}

func TestProportions(t *testing.T) {
	labels := []QueueType{C1, C1, C2, C4, Unidentified}
	p := Proportions(labels)
	if math.Abs(p[C1]-0.4) > 1e-9 || math.Abs(p[C2]-0.2) > 1e-9 {
		t.Fatalf("proportions = %v", p)
	}
	// Multiple sets pool together.
	p2 := Proportions(labels, []QueueType{C3, C3, C3, C3, C3})
	if math.Abs(p2[C3]-0.5) > 1e-9 {
		t.Fatalf("pooled proportions = %v", p2)
	}
	if len(Proportions()) != 0 {
		t.Fatal("empty proportions non-empty")
	}
}

func TestQueueTypeString(t *testing.T) {
	want := map[QueueType]string{C1: "C1", C2: "C2", C3: "C3", C4: "C4", Unidentified: "Unidentified"}
	for q, s := range want {
		if q.String() != s {
			t.Errorf("%d.String() = %q", q, q.String())
		}
	}
}

func TestThresholdsString(t *testing.T) {
	if testThresholds().String() == "" {
		t.Fatal("empty Thresholds.String()")
	}
}

// End-to-end slot semantics: a synthetic day at one spot cycling through
// the four contexts must label each period correctly. The waits model a
// 60%-coverage feed, so the paper's amplification is applied — routine 1's
// saturation bars (τ_arr, τ_dep) are only reachable with it (§6.2.1).
func TestClassifySyntheticDay(t *testing.T) {
	g := DaySlots(midnight())
	var waits []Wait
	add := func(w Wait) { waits = append(waits, w) }

	// 02:00-04:00 (slots 4..7): C4 — 2 taxis/slot waiting ~8 min.
	for slot := 4; slot < 8; slot++ {
		from, _ := g.Bounds(slot)
		add(streetWait(from.Add(5*time.Minute), 8*time.Minute))
		add(streetWait(from.Add(20*time.Minute), 9*time.Minute))
	}
	// 08:00-09:00 (slots 16..17): C2 via routine 2 — booking-dominated
	// departures spanning the slot; the few street arrivals grab taxis
	// fast (their slot-mean waits are the spot's shortest, which is what
	// anchors η_wait).
	c2Wait := map[int]time.Duration{16: 20 * time.Second, 17: 22 * time.Second,
		18: 60 * time.Second, 19: 62 * time.Second}
	for slot := 16; slot < 20; slot++ {
		from, _ := g.Bounds(slot)
		for i := 0; i < 30; i++ {
			start := from.Add(time.Duration(i) * 55 * time.Second)
			if i%4 == 0 {
				add(streetWait(start, c2Wait[slot]))
			} else {
				add(bookingWait(start, time.Minute))
			}
		}
	}
	// 12:00-14:00 (slots 24..27): C1 — taxi queue (waits ~5 min), heavy
	// throughput with ~45 s departure spacing.
	for slot := 24; slot < 28; slot++ {
		from, _ := g.Bounds(slot)
		for i := 0; i < 38; i++ {
			start := from.Add(time.Duration(i) * 45 * time.Second)
			add(Wait{Start: start, End: start.Add(5 * time.Minute), StartState: mdt.Free})
		}
	}
	// 22:00-23:00 (slots 44..45): C3 — taxi queue, few departures far
	// apart (waits ~20 min).
	for slot := 44; slot < 46; slot++ {
		from, _ := g.Bounds(slot)
		for i := 0; i < 4; i++ {
			start := from.Add(time.Duration(i) * 7 * time.Minute)
			add(Wait{Start: start, End: start.Add(20 * time.Minute), StartState: mdt.Free})
		}
	}

	feats := ComputeFeatures(waits, g, PaperAmplification)
	th := SelectThresholds(ComputeFeatures(waits, g, NoAmplification), g, 0.85)
	labels := Classify(feats, th)

	check := func(slots []int, want QueueType) {
		t.Helper()
		for _, j := range slots {
			if labels[j] != want {
				t.Errorf("slot %d: got %v, want %v (feat %+v, th %v)",
					j, labels[j], want, feats[j], th)
			}
		}
	}
	check([]int{5, 6}, C4)
	check([]int{16, 17}, C2)
	check([]int{25, 26}, C1)
	check([]int{44}, C3)
}
