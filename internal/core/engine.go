package core

import (
	"fmt"
	"sync"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/mdt"
)

// EngineConfig parameterizes the two-tier queue analytic engine (Fig. 4).
type EngineConfig struct {
	// SpeedThresholdKmh is PEA's η_sp; 10 km/h when zero.
	SpeedThresholdKmh float64
	// Detector holds the spot-detection (DBSCAN) settings.
	Detector DetectorConfig
	// AssignRadiusMeters bounds the pickup-to-spot assignment distance
	// when building W(r); 30 m when zero (twice the cluster ε).
	AssignRadiusMeters float64
	// Grid is the time-slot partition; the 48×30-minute grid over the
	// day containing the first record when zero.
	Grid SlotGrid
	// Amplify is the §6.2.1 dataset-coverage correction;
	// PaperAmplification suits a 60% feed.
	Amplify Amplification
	// Parallelism fans the per-taxi and per-spot stages over a worker
	// pool; 0 uses GOMAXPROCS, 1 forces the sequential path. Results are
	// identical at any setting.
	Parallelism int
}

// DefaultEngineConfig returns the paper's settings for a 60%-coverage daily
// dataset.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		SpeedThresholdKmh:  DefaultSpeedThresholdKmh,
		Detector:           DefaultDetectorConfig(),
		AssignRadiusMeters: 30,
		Amplify:            PaperAmplification,
	}
}

// SpotAnalysis is the engine's full output for one detected queue spot.
type SpotAnalysis struct {
	Spot       QueueSpot
	Waits      []Wait
	Features   []SlotFeatures
	Thresholds Thresholds
	Labels     []QueueType
}

// LabelAt returns the queue type of the slot containing t.
func (a *SpotAnalysis) LabelAt(grid SlotGrid, t time.Time) QueueType {
	j := grid.Index(t)
	if j < 0 || j >= len(a.Labels) {
		return Unidentified
	}
	return a.Labels[j]
}

// Result is the engine's output for one dataset.
type Result struct {
	Config EngineConfig
	// Pickups is every PEA-extracted pickup event (the GPS location set C
	// feeds DBSCAN; the full set is kept for diagnostics and Fig. 6).
	Pickups []Pickup
	// Spots is the per-spot analysis, ordered by descending pickup count.
	Spots []SpotAnalysis
	// ZoneStreetRatio is the per-zone street-job share used for τ_ratio.
	ZoneStreetRatio [citymap.NumZones]float64
}

// SpotCountByZone tallies detected spots per zone (Fig. 8).
func (r *Result) SpotCountByZone() [citymap.NumZones]int {
	var out [citymap.NumZones]int
	for _, s := range r.Spots {
		out[s.Spot.Zone]++
	}
	return out
}

// Cell returns spot's features and context at slot index j — the
// uniform cell accessor batch consumers (history backfill) read the grid
// through. Out-of-range indexes yield the zero features and Unidentified.
func (r *Result) Cell(spot, j int) (SlotFeatures, QueueType) {
	if spot < 0 || spot >= len(r.Spots) {
		return SlotFeatures{}, Unidentified
	}
	a := &r.Spots[spot]
	var f SlotFeatures
	label := Unidentified
	if j >= 0 && j < len(a.Features) {
		f = a.Features[j]
	}
	if j >= 0 && j < len(a.Labels) {
		label = a.Labels[j]
	}
	return f, label
}

// Engine is the two-tier queue analytic engine: the lower tier detects
// queue spots from slow pickup events; the upper tier disambiguates each
// spot's per-slot queue context.
type Engine struct {
	cfg EngineConfig
}

// NewEngine validates cfg (applying documented defaults) and returns an
// engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.SpeedThresholdKmh == 0 {
		cfg.SpeedThresholdKmh = DefaultSpeedThresholdKmh
	}
	if cfg.SpeedThresholdKmh < 0 {
		return nil, fmt.Errorf("core: negative speed threshold %g", cfg.SpeedThresholdKmh)
	}
	if cfg.Detector.Cluster.EpsMeters == 0 && cfg.Detector.Cluster.MinPoints == 0 {
		cfg.Detector = DefaultDetectorConfig()
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("core: negative parallelism %d", cfg.Parallelism)
	}
	if cfg.Detector.Parallelism == 0 {
		// One knob drives the whole pipeline: PEA fan-out, per-zone
		// clustering, DBSCAN itself and per-spot QCD.
		cfg.Detector.Parallelism = cfg.Parallelism
	}
	if err := cfg.Detector.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.AssignRadiusMeters == 0 {
		cfg.AssignRadiusMeters = 2 * cfg.Detector.Cluster.EpsMeters
	}
	if cfg.Amplify.Factor == 0 {
		cfg.Amplify = NoAmplification
	}
	return &Engine{cfg: cfg}, nil
}

// Analyze runs the full pipeline over a cleaned, time-ordered dataset:
// PEA → spot detection → W(r) assignment → WTE → features → thresholds →
// QCD.
func (e *Engine) Analyze(recs []mdt.Record) (*Result, error) {
	cfg := e.cfg
	if len(recs) == 0 {
		return &Result{Config: cfg}, nil
	}
	if cfg.Grid.Slots == 0 {
		first := recs[0].Time
		midnight := time.Date(first.Year(), first.Month(), first.Day(), 0, 0, 0, 0, time.UTC)
		cfg.Grid = DaySlots(midnight)
	}

	// Tier 1: queue spot detection.
	t0 := time.Now()
	byTaxi := mdt.SplitByTaxi(recs)
	pickups := ExtractAllParallel(byTaxi, cfg.SpeedThresholdKmh, cfg.Parallelism)
	stagePEA.Since(t0)
	t0 = time.Now()
	spots, err := DetectSpots(pickups, cfg.Detector)
	if err != nil {
		return nil, err
	}
	stageDBSCAN.Since(t0)

	// Tier 2: queue context disambiguation.
	t0 = time.Now()
	assigned := AssignPickups(pickups, spots, cfg.AssignRadiusMeters)
	res := &Result{Config: cfg, Pickups: pickups, Spots: make([]SpotAnalysis, len(spots))}

	// Zone street-job ratios from all spots' waits.
	var streetByZone, totalByZone [citymap.NumZones]int
	allWaits := make([][]Wait, len(spots))
	for i := range spots {
		waits := ExtractWaits(assigned[i])
		allWaits[i] = waits
		z := spots[i].Zone
		for _, w := range waits {
			if w.Street() {
				streetByZone[z]++
			}
			totalByZone[z]++
		}
	}
	stageWTE.Since(t0)
	for z := 0; z < citymap.NumZones; z++ {
		if totalByZone[z] == 0 {
			res.ZoneStreetRatio[z] = 1
		} else {
			res.ZoneStreetRatio[z] = float64(streetByZone[z]) / float64(totalByZone[z])
		}
	}

	analyzeSpot := func(i int) {
		waits := allWaits[i]
		feats := ComputeFeatures(waits, cfg.Grid, cfg.Amplify)
		rawFeats := feats
		if cfg.Amplify != NoAmplification {
			rawFeats = ComputeFeatures(waits, cfg.Grid, NoAmplification)
		}
		th := SelectThresholds(rawFeats, cfg.Grid, res.ZoneStreetRatio[spots[i].Zone])
		res.Spots[i] = SpotAnalysis{
			Spot:       spots[i],
			Waits:      waits,
			Features:   feats,
			Thresholds: th,
			Labels:     Classify(feats, th),
		}
	}
	t0 = time.Now()
	workers := capWorkers(cfg.Parallelism)
	if workers == 1 || len(spots) < 2 {
		for i := range spots {
			analyzeSpot(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					analyzeSpot(i)
				}
			}()
		}
		for i := range spots {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	stageQCD.Since(t0)
	pipelineRuns.Inc()
	pipelineRecords.Set(int64(len(recs)))
	pipelineSpots.Set(int64(len(spots)))
	return res, nil
}

// Grid returns the engine's effective slot grid after an Analyze call made
// with this configuration (zero until defaults are resolved).
func (e *Engine) Grid() SlotGrid { return e.cfg.Grid }
