package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// randomTrajectory builds a random-but-legal-ish trajectory: random states,
// random speeds, increasing timestamps. It intentionally includes illegal
// state orders — PEA must be robust to dirty input.
func randomTrajectory(rng *rand.Rand, n int) mdt.Trajectory {
	tr := make(mdt.Trajectory, n)
	ts := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	pos := geo.Point{Lat: 1.3, Lon: 103.8}
	for i := range tr {
		ts = ts.Add(time.Duration(10+rng.Intn(120)) * time.Second)
		pos = geo.Offset(pos, rng.NormFloat64()*200, rng.NormFloat64()*200)
		tr[i] = mdt.Record{
			Time:   ts,
			TaxiID: "SH0001A",
			Pos:    pos,
			Speed:  rng.Float64() * 60,
			State:  mdt.State(rng.Intn(mdt.NumStates)),
		}
	}
	return tr
}

// TestPEAInvariantsOnRandomInput checks the DESIGN.md §6 invariants on
// arbitrary input: every extracted sub-trajectory has >= 2 records, only
// low speeds, no non-operational states, at least one state transition,
// never starts occupied and ends unoccupied, and never FREE->ONCALL.
func TestPEAInvariantsOnRandomInput(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrajectory(rng, int(size))
		const eta = 10.0
		for _, p := range ExtractPickups(tr, eta) {
			sub := p.Sub
			if len(sub) < 2 {
				return false
			}
			changed := false
			for i, r := range sub {
				if r.Speed > eta {
					return false
				}
				if r.State.NonOperational() {
					return false
				}
				if i > 0 && r.State != sub[i-1].State {
					changed = true
				}
				if i > 0 && r.Time.Before(sub[i-1].Time) {
					return false
				}
			}
			if !changed {
				return false
			}
			start, end := sub[0].State, sub[len(sub)-1].State
			if start.Occupied() && end.Unoccupied() {
				return false
			}
			if start == mdt.Free && end == mdt.OnCall {
				return false
			}
			// Centroid must be the arithmetic mean of member coordinates.
			var pts []geo.Point
			for _, r := range sub {
				pts = append(pts, r.Pos)
			}
			if geo.Equirect(p.Centroid, geo.Centroid(pts)) > 0.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWTEInvariantsOnRandomInput: every extracted wait has End >= Start,
// StartState in {FREE, ONCALL, ARRIVED}, End at a POB record, and no
// PAYMENT record between Start and End.
func TestWTEInvariantsOnRandomInput(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrajectory(rng, int(size))
		w, ok := ExtractWait(tr)
		if !ok {
			return true
		}
		if w.End.Before(w.Start) {
			return false
		}
		switch w.StartState {
		case mdt.Free, mdt.OnCall, mdt.Arrived:
		default:
			return false
		}
		for _, r := range tr {
			if r.State == mdt.Payment && !r.Time.Before(w.Start) && r.Time.Before(w.End) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFeatureInvariantsOnRandomWaits: features derived from arbitrary wait
// sets are non-negative, Little's identity holds, and departure counts
// match the wait-end slot assignment exactly.
func TestFeatureInvariantsOnRandomWaits(t *testing.T) {
	grid := DaySlots(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var waits []Wait
		states := []mdt.State{mdt.Free, mdt.OnCall, mdt.Arrived}
		for i := 0; i < int(n); i++ {
			start := grid.Start.Add(time.Duration(rng.Int63n(int64(26 * time.Hour))))
			waits = append(waits, Wait{
				Start:      start,
				End:        start.Add(time.Duration(rng.Int63n(int64(30 * time.Minute)))),
				StartState: states[rng.Intn(3)],
			})
		}
		feats := ComputeFeatures(waits, grid, PaperAmplification)
		if len(feats) != grid.Slots {
			return false
		}
		slotSec := grid.SlotLen.Seconds()
		var totalDeps int
		for _, ft := range feats {
			if ft.TWait < 0 || ft.NArr < 0 || ft.QLen < 0 || ft.TDep < 0 || ft.NDep < 0 {
				return false
			}
			// Little's identity as implemented.
			want := ft.TWait.Seconds() * ft.NArr / slotSec
			if diff := ft.QLen - want; diff > 1e-9 || diff < -1e-9 {
				return false
			}
			totalDeps += ft.StreetDepartures + ft.BookingDepartures
		}
		// Every wait ending inside the grid is a departure exactly once.
		wantDeps := 0
		for _, w := range waits {
			if grid.Index(w.End) >= 0 {
				wantDeps++
			}
		}
		return totalDeps == wantDeps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestClassifyTotalOnRandomFeatures: Classify labels every slot with one of
// the five values and never panics on arbitrary feature values.
func TestClassifyTotalOnRandomFeatures(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		feats := make([]SlotFeatures, 48)
		for i := range feats {
			feats[i] = SlotFeatures{
				TWait: time.Duration(rng.Int63n(int64(30 * time.Minute))),
				NArr:  rng.Float64() * 100,
				QLen:  rng.Float64() * 20,
				TDep:  time.Duration(rng.Int63n(int64(10 * time.Minute))),
				NDep:  rng.Float64() * 100,
			}
		}
		th := Thresholds{
			EtaWait: time.Duration(1 + rng.Int63n(int64(5*time.Minute))),
			EtaDep:  time.Duration(1 + rng.Int63n(int64(5*time.Minute))),
			TauArr:  rng.Float64() * 100, TauDep: rng.Float64() * 100,
			EtaDur: 27 * time.Minute, TauRatio: rng.Float64(),
		}
		labels := Classify(feats, th)
		if len(labels) != len(feats) {
			return false
		}
		for _, l := range labels {
			switch l {
			case C1, C2, C3, C4, Unidentified:
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPEASubTrajectoriesDisjoint: extracted runs never share a record.
func TestPEASubTrajectoriesDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 50; trial++ {
		tr := randomTrajectory(rng, 200)
		seen := map[time.Time]bool{}
		for _, p := range ExtractPickups(tr, 10) {
			for _, r := range p.Sub {
				if seen[r.Time] {
					t.Fatal("two sub-trajectories share a record")
				}
				seen[r.Time] = true
			}
		}
	}
}
