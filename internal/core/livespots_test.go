package core

import (
	"math/rand"
	"testing"
	"time"

	"taxiqueue/internal/cluster"
	"taxiqueue/internal/geo"
)

// TestLiveDetectorDayReplayMatchesBatch is the tentpole property test:
// replaying a full simulated day's pickups through the live detector (a
// window wide enough to hold the whole day) must end with exactly the
// batch DetectSpots result — same spots, same centroids bit-for-bit, same
// counts, same order.
func TestLiveDetectorDayReplayMatchesBatch(t *testing.T) {
	day := simDay(t)
	res, err := engineForTest(t).Analyze(day.cleaned)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spots) < 10 {
		t.Fatalf("degenerate fixture: only %d batch spots", len(res.Spots))
	}

	d, err := NewLiveDetector(LiveDetectorConfig{
		Cluster: cluster.Params{EpsMeters: 15, MinPoints: 30},
		Window:  48 * time.Hour, // hold the whole day: pure insert replay
		ByZone:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replay in Result.Pickups order — the order DetectSpots clustered.
	for _, p := range res.Pickups {
		if !d.Observe(p.Centroid, p.Sub[len(p.Sub)-1].Time) {
			t.Fatal("simulated pickup rejected")
		}
	}

	live := d.Spots()
	if len(live) != len(res.Spots) {
		t.Fatalf("live replay found %d spots, batch %d", len(live), len(res.Spots))
	}
	for i, sp := range live {
		want := res.Spots[i].Spot
		if sp.Pos != want.Pos || sp.Zone != want.Zone || sp.PickupCount != want.PickupCount {
			t.Fatalf("spot %d: live %+v, batch %+v", i, sp, want)
		}
	}
}

// feedBlob pushes n pickups scattered sigma meters around c, one second
// apart starting at t0, and returns the time after the last one.
func feedBlob(t *testing.T, d *LiveDetector, c geo.Point, n int, t0 time.Time, rng *rand.Rand) time.Time {
	t.Helper()
	clock := t0
	for i := 0; i < n; i++ {
		clock = clock.Add(time.Second)
		if !d.Observe(geo.Offset(c, rng.NormFloat64()*4, rng.NormFloat64()*4), clock) {
			t.Fatal("pickup rejected")
		}
	}
	return clock
}

func TestLiveDetectorLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := geo.Point{Lat: 1.30, Lon: 103.80}
	d, err := NewLiveDetector(LiveDetectorConfig{
		Cluster:   cluster.Params{EpsMeters: 15, MinPoints: 10},
		Window:    30 * time.Minute,
		DropAfter: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 5, 12, 0, 0, 0, time.UTC)

	// 10 pickups: dense enough to cluster, below the 20-point confirm bar.
	clock := feedBlob(t, d, c, 10, t0, rng)
	spots := d.Refresh()
	if len(spots) != 1 || spots[0].State != SpotEmerging {
		t.Fatalf("after 10 pickups: %+v, want one emerging spot", spots)
	}
	if got := d.Stats(); got.EmergingTotal != 1 || got.ConfirmedTotal != 0 {
		t.Fatalf("stats %+v, want 1 emerging 0 confirmed", got)
	}

	// 15 more: past ConfirmPoints (2×10) — the spot confirms.
	clock = feedBlob(t, d, c, 15, clock, rng)
	spots = d.Refresh()
	if len(spots) != 1 || spots[0].State != SpotConfirmed {
		t.Fatalf("after 25 pickups: %+v, want one confirmed spot", spots)
	}
	if spots[0].Spot.PickupCount != 25 {
		t.Fatalf("confirmed support %d, want 25", spots[0].Spot.PickupCount)
	}

	// The queue dries up: once the window slides past, the cluster
	// dissolves and the spot decays rather than vanishing.
	d.Advance(clock.Add(31 * time.Minute))
	spots = d.Refresh()
	if len(spots) != 1 || spots[0].State != SpotDecaying {
		t.Fatalf("after the window drained: %+v, want one decaying spot", spots)
	}
	if spots[0].Spot.PickupCount != 0 {
		t.Fatalf("decaying support %d, want 0", spots[0].Spot.PickupCount)
	}

	// Still dry DropAfter later: dropped.
	d.Advance(clock.Add(42 * time.Minute))
	if spots = d.Refresh(); len(spots) != 0 {
		t.Fatalf("decayed spot still tracked: %+v", spots)
	}
	st := d.Stats()
	if st.EmergingTotal != 1 || st.ConfirmedTotal != 1 || st.DecayedTotal != 1 || st.DroppedTotal != 1 {
		t.Fatalf("lifecycle counters %+v, want 1/1/1/1", st)
	}
	if st.Tracked != 0 || st.WindowPoints != 0 {
		t.Fatalf("population %+v, want empty", st)
	}
}

// TestLiveDetectorHysteresis checks the anti-flap band: support wobbling
// between DecayPoints and ConfirmPoints changes nothing in either state.
func TestLiveDetectorHysteresis(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := geo.Point{Lat: 1.30, Lon: 103.80}
	d, err := NewLiveDetector(LiveDetectorConfig{
		Cluster:       cluster.Params{EpsMeters: 15, MinPoints: 10},
		Window:        30 * time.Minute,
		ConfirmPoints: 30,
		DecayPoints:   15,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 5, 12, 0, 0, 0, time.UTC)

	// 20 points sits inside the band: the spot emerges but never confirms.
	clock := feedBlob(t, d, c, 20, t0, rng)
	if spots := d.Refresh(); len(spots) != 1 || spots[0].State != SpotEmerging {
		t.Fatalf("in-band support: %+v, want still emerging", spots)
	}
	// 15 more confirms (35 ≥ 30)…
	clock = feedBlob(t, d, c, 15, clock, rng)
	if spots := d.Refresh(); len(spots) != 1 || spots[0].State != SpotConfirmed {
		t.Fatal("support above confirm bar did not confirm")
	}
	// …then the window slides past the first 35 points while 20 fresh
	// ones arrive: support lands back inside the band (20 ≥ DecayPoints,
	// < ConfirmPoints) — still confirmed, no decay flap.
	clock = feedBlob(t, d, c, 20, clock.Add(31*time.Minute), rng)
	spots := d.Refresh()
	if len(spots) != 1 || spots[0].State != SpotConfirmed {
		t.Fatalf("in-band support after confirm: %+v, want still confirmed", spots)
	}
	if got := spots[0].Spot.PickupCount; got != 20 {
		t.Fatalf("banded support %d, want 20", got)
	}
	if st := d.Stats(); st.DecayedTotal != 0 {
		t.Fatalf("confirmed spot decayed inside the hysteresis band: %+v", st)
	}

	// The mirror edge: once decaying, in-band support must NOT re-confirm.
	d.Advance(clock.Add(31 * time.Minute))
	if spots := d.Refresh(); len(spots) != 1 || spots[0].State != SpotDecaying {
		t.Fatalf("drained window: %+v, want decaying", spots)
	}
	clock = feedBlob(t, d, c, 20, clock.Add(32*time.Minute), rng)
	if spots := d.Refresh(); len(spots) != 1 || spots[0].State != SpotDecaying {
		t.Fatalf("in-band support while decaying: %+v, want still decaying", spots)
	}
}

func TestLiveDetectorRejectsInvertedHysteresis(t *testing.T) {
	_, err := NewLiveDetector(LiveDetectorConfig{
		Cluster:       cluster.Params{EpsMeters: 15, MinPoints: 10},
		ConfirmPoints: 10,
		DecayPoints:   20,
	})
	if err == nil {
		t.Fatal("inverted hysteresis thresholds accepted")
	}
}
