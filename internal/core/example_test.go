package core_test

import (
	"fmt"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// ExampleExtractPickups shows Algorithm 1 on a hand-written trajectory: a
// taxi crawls in a stand line (two low-speed FREE records), picks up (POB
// at low speed) and drives off.
func ExampleExtractPickups() {
	base := time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)
	stand := geo.Point{Lat: 1.3044, Lon: 103.8335}
	rec := func(sec int, speed float64, st mdt.State) mdt.Record {
		return mdt.Record{Time: base.Add(time.Duration(sec) * time.Second),
			TaxiID: "SH0001A", Pos: stand, Speed: speed, State: st}
	}
	trajectory := mdt.Trajectory{
		rec(0, 38, mdt.Free),  // cruising in
		rec(60, 4, mdt.Free),  // joins the line
		rec(110, 2, mdt.Free), // crawling forward
		rec(170, 3, mdt.POB),  // passenger boards
		rec(230, 35, mdt.POB), // drives off (terminates the run)
	}
	pickups := core.ExtractPickups(trajectory, core.DefaultSpeedThresholdKmh)
	fmt.Printf("pickups: %d, run length: %d records\n", len(pickups), len(pickups[0].Sub))
	w, _ := core.ExtractWait(pickups[0].Sub)
	fmt.Printf("street job: %v, waited %v\n", w.Street(), w.Duration())
	// Output:
	// pickups: 1, run length: 3 records
	// street job: true, waited 1m50s
}

// ExampleClassify labels one slot with hand-built features and thresholds.
func ExampleClassify() {
	feats := []core.SlotFeatures{{
		TWait: 12 * time.Minute, // taxis wait long
		NArr:  20, QLen: 8,      // a standing taxi queue (L̄ >= 1)
		TDep: 4 * time.Minute, NDep: 7, // few, widely spaced departures
	}}
	th := core.Thresholds{
		EtaWait: time.Minute, EtaDep: 80 * time.Second,
		TauArr: 22.5, TauDep: 22.5,
		EtaDur: 27 * time.Minute, TauRatio: 0.85,
	}
	fmt.Println(core.Classify(feats, th)[0])
	// Output:
	// C3
}
