package sim

import (
	"math/rand"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// Fault-injection rates per record, chosen so the erroneous share of the
// dataset lands near the paper's 2.8% (§6.1.1):
//   - duplicate GPRS retransmissions     ~1.5%
//   - improper states (FREE between two PAYMENTs, the clock-sync bug)
//     ~0.3%
//   - GPS coordinates outside Singapore (urban-canyon outliers) ~1.0%
const (
	dupRate      = 0.016
	improperRate = 0.003
	gpsRate      = 0.011
)

// injectFaults rewrites recs with the §6.1.1 error modes and returns the new
// slice plus the count of injected erroneous records. Time order is
// preserved: duplicates and improper-state records are inserted adjacent to
// their source record; GPS outliers modify a record in place.
func injectFaults(rng *rand.Rand, recs []mdt.Record) ([]mdt.Record, int) {
	out := make([]mdt.Record, 0, len(recs)+len(recs)/32)
	injected := 0
	for _, r := range recs {
		u := rng.Float64()
		switch {
		case u < gpsRate:
			// Urban-canyon outlier: throw the fix far outside the island
			// (sea or Malaysia) or an inaccessible zone.
			bad := r
			bad.Pos = geo.Point{
				Lat: citymapIslandMinLat - 0.3 - rng.Float64(),
				Lon: r.Pos.Lon + rng.Float64()*2 - 1,
			}
			out = append(out, bad)
			injected++
		case u < gpsRate+dupRate:
			// GPRS retransmission: the identical record appears twice.
			out = append(out, r, r)
			injected++
		case u < gpsRate+dupRate+improperRate && r.State == mdt.Payment:
			// Old-MDT clock-sync bug: a spurious FREE sandwiched between
			// two PAYMENT records.
			spurious := r
			spurious.State = mdt.Free
			out = append(out, r, spurious, r)
			injected += 2
		default:
			out = append(out, r)
		}
	}
	return out, injected
}

// citymapIslandMinLat mirrors citymap.Island.MinLat without importing the
// package into this tiny helper (keeps the fault injector reusable on raw
// record streams in tests).
const citymapIslandMinLat = 1.220
