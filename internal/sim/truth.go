package sim

import (
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/mdt"
)

// LenSample is one change of a ground-truth queue length.
type LenSample struct {
	Time time.Time
	Len  int
}

// SpotTruth is the simulator's ground truth for one landmark's queue spot:
// what the detection and disambiguation results should be validated
// against.
type SpotTruth struct {
	Landmark citymap.Landmark
	// TaxiQueueLog records every change of (queued + boarding) taxi count:
	// exactly what the vehicle monitor's camera would see in the stand
	// polygon.
	TaxiQueueLog []LenSample
	// PaxQueueLog records every change of the waiting-passenger count.
	PaxQueueLog []LenSample
	// Pickups counts passengers picked up at the spot (street + booking).
	Pickups int
	// BusyPickups counts §7.2 BUSY-state cherry-picking pickups.
	BusyPickups int
	// FailedBookings are the timestamps of failed bookings at this spot.
	FailedBookings []time.Time
	// TaxiWaitTotal/TaxiWaitCount accumulate true taxi queue waits.
	TaxiWaitTotal time.Duration
	TaxiWaitCount int
	// PaxWaitTotal/PaxWaitCount accumulate true passenger waits.
	PaxWaitTotal time.Duration
	PaxWaitCount int
}

// AvgTaxiQueueLen returns the time-weighted average (queued + boarding)
// taxi count over [from, to).
func (st *SpotTruth) AvgTaxiQueueLen(from, to time.Time) float64 {
	return avgFromLog(st.TaxiQueueLog, from, to)
}

// AvgPaxQueueLen returns the time-weighted average waiting-passenger count
// over [from, to).
func (st *SpotTruth) AvgPaxQueueLen(from, to time.Time) float64 {
	return avgFromLog(st.PaxQueueLog, from, to)
}

// MaxPaxQueueLen returns the maximum passenger queue length observed in
// [from, to).
func (st *SpotTruth) MaxPaxQueueLen(from, to time.Time) int {
	maxLen := 0
	cur := 0
	for _, s := range st.PaxQueueLog {
		if s.Time.Before(from) {
			cur = s.Len
			continue
		}
		if !s.Time.Before(to) {
			break
		}
		cur = s.Len
		if cur > maxLen {
			maxLen = cur
		}
	}
	_ = cur
	return maxLen
}

// FailedBookingCount counts failed bookings in [from, to).
func (st *SpotTruth) FailedBookingCount(from, to time.Time) int {
	n := 0
	for _, t := range st.FailedBookings {
		if !t.Before(from) && t.Before(to) {
			n++
		}
	}
	return n
}

func avgFromLog(log []LenSample, from, to time.Time) float64 {
	if !to.After(from) || len(log) == 0 {
		return 0
	}
	total := to.Sub(from).Seconds()
	cur := 0
	acc := 0.0
	prev := from
	for _, s := range log {
		if !s.Time.After(from) {
			cur = s.Len
			continue
		}
		if !s.Time.Before(to) {
			break
		}
		acc += float64(cur) * s.Time.Sub(prev).Seconds()
		prev = s.Time
		cur = s.Len
	}
	acc += float64(cur) * to.Sub(prev).Seconds()
	return acc / total
}

// Truth is the complete ground truth of a run.
type Truth struct {
	Spots []*SpotTruth
	// IllegalTransitions counts taxi state transitions that violate the
	// Fig. 3 diagram (must stay zero before fault injection).
	IllegalTransitions int
	failedBookings     int
	end                time.Time
}

func newTruth(city *citymap.Map) *Truth {
	t := &Truth{Spots: make([]*SpotTruth, len(city.Landmarks))}
	for i, lm := range city.Landmarks {
		t.Spots[i] = &SpotTruth{Landmark: lm}
	}
	return t
}

// End returns the end of the simulated window.
func (t *Truth) End() time.Time { return t.end }

func (t *Truth) finish(end time.Time) { t.end = end }

func (t *Truth) taxiQueueChanged(sp *spot, at time.Time, n int) {
	st := t.Spots[sp.idx]
	st.TaxiQueueLog = append(st.TaxiQueueLog, LenSample{Time: at, Len: n})
}

func (t *Truth) paxQueueChanged(sp *spot, at time.Time, n int) {
	st := t.Spots[sp.idx]
	st.PaxQueueLog = append(st.PaxQueueLog, LenSample{Time: at, Len: n})
}

func (t *Truth) spotPickup(sp *spot)     { t.Spots[sp.idx].Pickups++ }
func (t *Truth) spotBusyPickup(sp *spot) { t.Spots[sp.idx].BusyPickups++ }
func (t *Truth) spotFailedBooking(sp *spot, at time.Time) {
	st := t.Spots[sp.idx]
	st.FailedBookings = append(st.FailedBookings, at)
}

func (t *Truth) taxiWait(sp *spot, d time.Duration) {
	st := t.Spots[sp.idx]
	st.TaxiWaitTotal += d
	st.TaxiWaitCount++
}

func (t *Truth) paxWait(sp *spot, d time.Duration) {
	st := t.Spots[sp.idx]
	st.PaxWaitTotal += d
	st.PaxWaitCount++
}

// transition audits every per-taxi state transition against the Fig. 3
// diagram; emit calls it for all records including unobserved taxis.
func (t *Truth) transition(from, to mdt.State) {
	if !mdt.LegalTransition(from, to) {
		t.IllegalTransitions++
	}
}
