package sim

import (
	"math"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// taxiMode is the agent-level mode (finer than the MDT state: e.g. both
// "queued" and "roaming" log FREE).
type taxiMode uint8

const (
	modeRoaming taxiMode = iota
	modeToSpot
	modeQueued
	modeBoarding
	modeOnCall
	modeTrip
	modeBreak
)

type taxi struct {
	index    int
	id       string
	observed bool
	pos      geo.Point
	mode     taxiMode
	poolIdx  int // position in Sim.pool, -1 when not pooled
	// epoch invalidates stale scheduled events (crawl logs, reneges):
	// every mode change bumps it; events capture the value at scheduling.
	epoch     uint64
	lastState mdt.State
}

func (s *Sim) initTaxis() {
	n := s.cfg.NumTaxis
	s.taxis = make([]*taxi, n)
	for i := 0; i < n; i++ {
		tx := &taxi{
			index:     i,
			id:        taxiID(i),
			observed:  s.rng.Float64() < s.cfg.ObservedFraction,
			pos:       s.randomIslandPoint(),
			poolIdx:   -1,
			lastState: mdt.Free,
		}
		s.taxis[i] = tx
		s.poolAdd(tx)
		// Stagger the first roam log across the first interval.
		s.schedule(s.cfg.Start.Add(s.expDur(s.cfg.RoamLogIntervalSec)), func() { s.roamLog(tx, tx.epoch) })
		// One or two driver breaks per day.
		s.scheduleBreaks(tx)
	}
	s.scheduleGlobalProcesses()
}

func (tx *taxi) bump() { tx.epoch++ }

// setMode transitions the agent mode and invalidates stale events.
func (s *Sim) setMode(tx *taxi, m taxiMode) {
	tx.mode = m
	tx.bump()
}

// toRoaming returns a taxi to FREE roaming and the pool.
func (s *Sim) toRoaming(tx *taxi) {
	s.setMode(tx, modeRoaming)
	s.poolAdd(tx)
	epoch := tx.epoch
	s.after(s.expDur(s.cfg.RoamLogIntervalSec), func() { s.roamLog(tx, epoch) })
}

// roamLog emits a periodic FREE GPS record while the taxi cruises; it
// sometimes simulates a traffic-jam crawl (no state change, so PEA must
// reject it).
func (s *Sim) roamLog(tx *taxi, epoch uint64) {
	if tx.epoch != epoch || tx.mode != modeRoaming {
		return
	}
	// Random-walk the position.
	tx.pos = s.stepPosition(tx.pos, 200+s.rng.Float64()*1200)
	if s.rng.Float64() < 0.05 {
		// Traffic jam / red light: 2-4 consecutive low-speed records with
		// the taxi state unchanged.
		n := 2 + s.rng.Intn(3)
		for i := 0; i < n; i++ {
			d := time.Duration(i) * s.uniform(20*time.Second, 45*time.Second)
			s.schedule(s.now.Add(d), func() {
				if tx.epoch == epoch {
					s.emit(tx, mdt.Free, tx.pos, s.speedIn(0, 8))
				}
			})
		}
		s.after(time.Duration(n)*45*time.Second+s.expDur(s.cfg.RoamLogIntervalSec), func() { s.roamLog(tx, epoch) })
		return
	}
	s.emit(tx, mdt.Free, tx.pos, s.speedIn(15, 55))
	s.after(s.expDur(s.cfg.RoamLogIntervalSec), func() { s.roamLog(tx, epoch) })
}

// stepPosition moves p a given distance on a random bearing, reflecting back
// into the island frame.
func (s *Sim) stepPosition(p geo.Point, meters float64) geo.Point {
	q := geo.Destination(p, s.rng.Float64()*360, meters)
	r := citymap.IslandClamp(q)
	return r
}

// scheduleBreaks plans BREAK/OFFLINE periods for the day(s).
func (s *Sim) scheduleBreaks(tx *taxi) {
	days := int(s.cfg.Duration.Hours()/24) + 1
	for d := 0; d < days; d++ {
		base := s.cfg.Start.Add(time.Duration(d) * 24 * time.Hour)
		// Lunch-ish break.
		at := base.Add(s.uniform(11*time.Hour, 14*time.Hour))
		s.schedule(at, func() { s.takeBreak(tx, s.uniform(25*time.Minute, 50*time.Minute), false) })
		// Shift change for roughly half the fleet (long OFFLINE period).
		if s.rng.Float64() < 0.5 {
			at := base.Add(s.uniform(16*time.Hour, 18*time.Hour))
			s.schedule(at, func() { s.takeBreak(tx, s.uniform(45*time.Minute, 90*time.Minute), true) })
		}
	}
}

// takeBreak pulls a roaming taxi off the road. Non-roaming taxis skip the
// break (they are mid-job). Long logged-off breaks (shift changes) power
// the MDT down entirely, exercising the full BREAK -> OFFLINE -> POWEROFF
// -> OFFLINE -> BREAK -> FREE cycle of Fig. 3.
func (s *Sim) takeBreak(tx *taxi, d time.Duration, logOff bool) {
	if tx.mode != modeRoaming {
		return
	}
	s.poolRemove(tx)
	s.setMode(tx, modeBreak)
	s.emit(tx, mdt.Break, tx.pos, 0)
	powerOff := logOff && d > time.Hour/2 && s.rng.Float64() < 0.5
	if logOff {
		s.after(s.uniform(30*time.Second, 2*time.Minute), func() {
			if tx.mode == modeBreak {
				s.emit(tx, mdt.Offline, tx.pos, 0)
				if powerOff {
					s.after(s.uniform(time.Minute, 3*time.Minute), func() {
						if tx.mode == modeBreak {
							s.emit(tx, mdt.PowerOff, tx.pos, 0)
						}
					})
				}
			}
		})
	}
	s.after(d, func() {
		if tx.mode != modeBreak {
			return
		}
		if powerOff {
			s.emit(tx, mdt.Offline, tx.pos, 0) // MDT boots logged-off
		}
		if logOff {
			s.emit(tx, mdt.Break, tx.pos, 0)
		}
		s.emit(tx, mdt.Free, tx.pos, 0)
		s.toRoaming(tx)
	})
}

// scheduleGlobalProcesses starts the island-wide Poisson processes: quick
// street hails, scattered slow pickups, and off-spot bookings.
func (s *Sim) scheduleGlobalProcesses() {
	s.schedule(s.cfg.Start.Add(s.expDur(5)), s.streetHailProcess)
	s.schedule(s.cfg.Start.Add(s.expDur(10)), s.scatteredSlowProcess)
	s.schedule(s.cfg.Start.Add(s.expDur(20)), s.homeBookingProcess)
}

// demandShape is a city-wide hourly multiplier for ambient demand.
func (s *Sim) demandShape() float64 {
	shapes := [24]float64{
		0.25, 0.15, 0.10, 0.08, 0.10, 0.25, 0.55, 0.90, 1.00, 0.75,
		0.60, 0.65, 0.70, 0.65, 0.60, 0.65, 0.75, 0.95, 1.00, 0.90,
		0.75, 0.60, 0.45, 0.35,
	}
	return shapes[s.hour()]
}

// streetHailProcess generates quick pickups at arbitrary locations: the
// "high proportion of quick pickup events" of §4 that must NOT be detected
// as queue spots (fewer than two consecutive low-speed records).
func (s *Sim) streetHailProcess() {
	// Rate: ~6 quick hails per taxi per day at peak.
	perSec := float64(s.cfg.NumTaxis) * 8.0 / 86400 * s.demandShape() * s.cfg.RateScale
	s.after(s.expDur(1/math.Max(perSec, 1e-9)), s.streetHailProcess)
	tx := s.poolTakeRandom()
	if tx == nil {
		return
	}
	s.setMode(tx, modeBoarding)
	// The taxi has cruised since its last logged position (it may have
	// just left a queue spot); displace it so off-spot pickups never land
	// on a spot's coordinates.
	tx.pos = s.stepPosition(tx.pos, 600+s.rng.Float64()*2500)
	// Hail while moving: one moderate-speed FREE record, then POB shortly
	// after, also at speed. Occasionally one record dips below the PEA
	// threshold, but never two in a row.
	s.emit(tx, mdt.Free, tx.pos, s.speedIn(9, 30))
	s.after(s.uniform(15*time.Second, 40*time.Second), func() {
		s.emit(tx, mdt.POB, tx.pos, s.speedIn(12, 40))
		s.stats.StreetJobs++
		s.startTrip(tx, tx.pos)
	})
}

// scatteredSlowProcess generates genuine slow pickups away from queue
// spots: PEA extracts them, and they become the spatial noise DBSCAN must
// reject (the paper's 264k daily pickup events vs ~180 spots).
func (s *Sim) scatteredSlowProcess() {
	perSec := float64(s.cfg.NumTaxis) * 9.0 / 86400 * s.demandShape() * s.cfg.RateScale
	s.after(s.expDur(1/math.Max(perSec, 1e-9)), s.scatteredSlowProcess)
	tx := s.poolTakeRandom()
	if tx == nil {
		return
	}
	s.setMode(tx, modeBoarding)
	tx.pos = s.stepPosition(tx.pos, 600+s.rng.Float64()*2500)
	pos := tx.pos
	s.emit(tx, mdt.Free, pos, s.speedIn(0, 8))
	gap1 := s.uniform(25*time.Second, 50*time.Second)
	s.after(gap1, func() { s.emit(tx, mdt.Free, pos, s.speedIn(0, 6)) })
	s.after(gap1+s.uniform(20*time.Second, 60*time.Second), func() {
		s.emit(tx, mdt.POB, pos, s.speedIn(0, 6))
		s.stats.ScatteredSlow++
		s.startTrip(tx, pos)
	})
}

// homeBookingProcess generates bookings away from queue spots (residences,
// small streets). Successful ones are served by a roaming taxi with the full
// ONCALL -> ARRIVED -> POB sequence.
func (s *Sim) homeBookingProcess() {
	perSec := float64(s.cfg.NumTaxis) * 3.0 / 86400 * s.demandShape() * s.cfg.RateScale
	s.after(s.expDur(1/math.Max(perSec, 1e-9)), s.homeBookingProcess)
	pickup := s.randomIslandPoint()
	avail := s.freeTaxisWithin(pickup, s.disp.Radius())
	if !s.disp.Request(s.now, "", pickup, avail) {
		s.truth.failedBookings++
		return
	}
	tx := s.takeNearestPooled(pickup, s.disp.Radius())
	if tx == nil {
		return // the counted taxi was at a spot queue; treat as served there
	}
	s.runBookingPickup(tx, pickup)
}

// takeNearestPooled removes and returns the pooled taxi nearest to p within
// radius, or nil.
func (s *Sim) takeNearestPooled(p geo.Point, radius float64) *taxi {
	best := -1
	bestD := radius
	for _, i := range s.pool {
		if d := geo.Equirect(p, s.taxis[i].pos); d <= bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return nil
	}
	tx := s.taxis[best]
	s.poolRemove(tx)
	return tx
}

// runBookingPickup drives the §2.2 booking-job sequence for taxi tx to the
// pickup point (away from any queue spot).
func (s *Sim) runBookingPickup(tx *taxi, pickup geo.Point) {
	s.setMode(tx, modeOnCall)
	s.emit(tx, mdt.OnCall, tx.pos, s.speedIn(20, 45))
	travel := s.travelTime(tx.pos, pickup)
	s.after(travel, func() {
		tx.pos = pickup
		s.emit(tx, mdt.Arrived, pickup, s.speedIn(0, 5))
		if s.rng.Float64() < 0.05 {
			// Passenger no-show: NOSHOW then FREE within ~10 s (§2.2).
			s.after(s.uniform(4*time.Minute, 10*time.Minute), func() {
				s.emit(tx, mdt.NoShow, pickup, 0)
				s.stats.NoShows++
				s.after(s.uniform(5*time.Second, 10*time.Second), func() {
					s.emit(tx, mdt.Free, pickup, s.speedIn(10, 30))
					s.toRoaming(tx)
				})
			})
			return
		}
		s.after(s.uniform(30*time.Second, 150*time.Second), func() {
			s.emit(tx, mdt.POB, pickup, s.speedIn(0, 6))
			s.stats.BookingPickups++
			s.startTrip(tx, pickup)
		})
	})
}

// travelTime estimates urban driving time between two points (~26 km/h
// effective with noise, bounded below by one minute).
func (s *Sim) travelTime(from, to geo.Point) time.Duration {
	d := geo.Equirect(from, to)
	secs := d/7.2*(0.8+0.4*s.rng.Float64()) + 60
	return time.Duration(secs * float64(time.Second))
}

// startTrip runs the occupied leg: periodic POB logs, optional STC, then
// PAYMENT and FREE at the destination.
func (s *Sim) startTrip(tx *taxi, from geo.Point) {
	s.setMode(tx, modeTrip)
	epoch := tx.epoch
	dest := s.tripDestination(from)
	dur := s.travelTime(from, dest)
	if dur < 4*time.Minute {
		dur = 4 * time.Minute
	}
	// STC shortly before arrival (drivers sometimes skip it, §6.1.1).
	// Trip logs stop before the STC instant so POB never follows STC,
	// which Fig. 3 forbids.
	logsUntil := dur
	if s.rng.Float64() < 0.8 {
		stcLead := s.uniform(60*time.Second, 100*time.Second)
		stcAt := dur - stcLead
		logsUntil = stcAt - time.Second
		s.schedule(s.now.Add(stcAt), func() {
			if tx.epoch == epoch {
				s.emit(tx, mdt.STC, lerp(from, dest, 0.97), s.speedIn(20, 45))
			}
		})
	}
	// Periodic trip logs, interpolated along the straight segment.
	interval := s.cfg.TripLogIntervalSec
	for i := 1; ; i++ {
		at := time.Duration(float64(i) * interval * float64(time.Second))
		if at >= logsUntil {
			break
		}
		frac := float64(at) / float64(dur)
		s.schedule(s.now.Add(at), func() {
			if tx.epoch != epoch {
				return
			}
			tx.pos = lerp(from, dest, frac)
			s.emit(tx, mdt.POB, tx.pos, s.speedIn(22, 58))
		})
	}
	s.schedule(s.now.Add(dur), func() {
		if tx.epoch != epoch {
			return
		}
		tx.pos = dest
		s.emit(tx, mdt.Payment, dest, s.speedIn(0, 3))
		s.after(s.uniform(25*time.Second, 80*time.Second), func() {
			if tx.epoch != epoch {
				return
			}
			s.emit(tx, mdt.Free, dest, s.speedIn(0, 3))
			s.toRoaming(tx)
		})
	})
}

func lerp(a, b geo.Point, f float64) geo.Point {
	return geo.Point{Lat: a.Lat + (b.Lat-a.Lat)*f, Lon: a.Lon + (b.Lon-a.Lon)*f}
}
