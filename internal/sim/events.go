package sim

import "container/heap"

// event is one scheduled simulation action. Events with equal times fire in
// scheduling order (seq), making runs fully deterministic for a fixed seed.
type event struct {
	at  int64 // unix nanoseconds
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

var _ heap.Interface = (*eventHeap)(nil)
