package sim

// event is one scheduled simulation action. Events with equal times fire in
// scheduling order (seq), making runs fully deterministic for a fixed seed.
type event struct {
	at  int64 // unix nanoseconds
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap over (at, seq), specialized to the event
// type. container/heap moves elements as `any`, which boxes every event on
// Push and again on Pop — two heap allocations per scheduled event, the
// dominant allocation source of a simulated day — so the sift loops are
// written out here and events move by value.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push inserts e, sifting it up to its ordered position.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hh.less(i, parent) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
}

// pop removes and returns the earliest event. Callers must check len > 0.
func (h *eventHeap) pop() event {
	hh := *h
	n := len(hh) - 1
	top := hh[0]
	hh[0] = hh[n]
	hh[n] = event{} // drop the fn reference so the closure can be collected
	*h = hh[:n]
	hh = hh[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && hh.less(r, c) {
			c = r
		}
		if !hh.less(c, i) {
			break
		}
		hh[i], hh[c] = hh[c], hh[i]
		i = c
	}
	return top
}
