// Package sim is the city-scale taxi fleet simulator that substitutes for
// the proprietary Singapore MDT feed (see DESIGN.md). It drives every taxi
// through the 11-state MDT state machine across street jobs, booking jobs,
// queue-spot waiting, breaks and driver-behavior quirks, and emits
// event-driven MDT log records with the same schema and error modes the
// paper describes (§2, §6.1.1).
//
// The simulation is a discrete-event system: spot arrival processes,
// per-taxi logging, boarding and trips are all events on one deterministic
// heap, so a fixed Config always produces the same dataset.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/dispatch"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// Config parameterizes one simulation run.
type Config struct {
	// Seed drives all randomness; equal seeds give identical outputs.
	Seed int64
	// Start is the simulation start instant (use midnight; its weekday
	// selects the weekday/weekend demand regime).
	Start time.Time
	// Duration of the simulated period; 24h when zero.
	Duration time.Duration
	// NumTaxis is the fleet size; 3000 when zero.
	NumTaxis int
	// City is the landmark map; a default full-scale city when nil.
	City *citymap.Map
	// ObservedFraction is the share of taxis whose MDT logs appear in the
	// output dataset (the paper's operator covers 60% of the fleet);
	// 0.6 when zero.
	ObservedFraction float64
	// RateScale scales all spot arrival rates; 1 when zero.
	RateScale float64
	// InjectFaults enables the §6.1.1 error modes (duplicates, improper
	// states, GPS outliers).
	InjectFaults bool
	// Dispatcher receives booking requests; a fresh one when nil.
	Dispatcher *dispatch.Dispatcher
	// RoamLogIntervalSec is the mean seconds between roaming GPS logs;
	// 110 when zero. Larger values shrink the dataset.
	RoamLogIntervalSec float64
	// TripLogIntervalSec is the mean seconds between on-trip GPS logs;
	// 80 when zero.
	TripLogIntervalSec float64
}

// DefaultFleet is the fleet a city gets when Config.NumTaxis is zero:
// enough taxis that spot supply processes rarely find the pool empty (~16
// per landmark, ~3000 for the full-scale city). Exported so callers that
// scale the fleet (e.g. a surge multiplier) can scale the same baseline.
func DefaultFleet(city *citymap.Map) int {
	n := 20 * len(city.Landmarks)
	if n < 200 {
		n = 200
	}
	return n
}

func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC) // a Monday
	}
	if c.Duration == 0 {
		c.Duration = 24 * time.Hour
	}
	if c.City == nil {
		c.City = citymap.Generate(c.Seed+1, 1)
	}
	if c.NumTaxis == 0 {
		c.NumTaxis = DefaultFleet(c.City)
	}
	if c.ObservedFraction == 0 {
		c.ObservedFraction = 0.6
	}
	if c.RateScale == 0 {
		c.RateScale = 1
	}
	if c.Dispatcher == nil {
		c.Dispatcher = &dispatch.Dispatcher{}
	}
	if c.RoamLogIntervalSec == 0 {
		c.RoamLogIntervalSec = 110
	}
	if c.TripLogIntervalSec == 0 {
		c.TripLogIntervalSec = 80
	}
	return c
}

// Stats counts what happened during a run.
type Stats struct {
	Records         int // observed records emitted (before fault injection)
	StreetJobs      int // quick street-hail pickups away from spots
	SpotPickups     int // street pickups at queue spots
	ScatteredSlow   int // slow pickups away from spots (DBSCAN noise)
	BookingPickups  int // successful booking pickups
	FailedBookings  int
	NoShows         int
	TaxiReneges     int // taxis that left a spot queue without a passenger
	PaxReneges      int // passengers who gave up waiting
	BusyStatePicks  int // §7.2 BUSY-state favorite-passenger pickups
	InjectedFaults  int // erroneous records added by fault injection
	TotalWithFaults int // records in the final dataset
}

// Output is everything a run produces.
type Output struct {
	// Records is the observed MDT dataset in non-decreasing time order.
	Records []mdt.Record
	// Truth is the simulator's ground truth for validation.
	Truth *Truth
	// Stats summarizes the run.
	Stats Stats
	// Dispatcher holds the booking ledger (same object as Config's).
	Dispatcher *dispatch.Dispatcher
	// Config echoes the effective configuration.
	Config Config
}

// Sim is one in-flight simulation. Construct with New, then call Run.
type Sim struct {
	cfg   Config
	rng   *rand.Rand
	city  *citymap.Map
	disp  *dispatch.Dispatcher
	truth *Truth
	stats Stats

	events eventHeap
	seq    uint64
	now    time.Time
	end    time.Time

	taxis []*taxi
	pool  []int // indexes of taxis roaming FREE
	spots []*spot

	recs []mdt.Record
}

// New prepares a simulation from cfg.
func New(cfg Config) *Sim {
	cfg = cfg.withDefaults()
	s := &Sim{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		city: cfg.City,
		disp: cfg.Dispatcher,
		now:  cfg.Start,
		end:  cfg.Start.Add(cfg.Duration),
	}
	s.truth = newTruth(cfg.City)
	// Pre-size the record log: each observed taxi emits roughly one record
	// per mean log interval (roam and trip intervals bracket the mix), so a
	// single up-front allocation replaces the ~20 doublings a 2M-record day
	// would otherwise pay (~180 MB of copying at full scale).
	meanIntervalSec := (cfg.RoamLogIntervalSec + cfg.TripLogIntervalSec) / 2
	est := int(float64(cfg.NumTaxis) * cfg.ObservedFraction * cfg.Duration.Seconds() / meanIntervalSec)
	s.recs = make([]mdt.Record, 0, est)
	// The pending-event set is bounded by a few events per taxi plus the
	// spot arrival processes; one up-front slab absorbs the heap's growth.
	s.events = make(eventHeap, 0, 4*cfg.NumTaxis+64)
	s.initTaxis()
	s.initSpots()
	return s
}

// Run executes the simulation to completion and returns its output.
func Run(cfg Config) Output {
	s := New(cfg)
	return s.run()
}

func (s *Sim) run() Output {
	for len(s.events) > 0 {
		e := s.events.pop()
		at := time.Unix(0, e.at).UTC()
		if at.After(s.end) {
			break
		}
		s.now = at
		e.fn()
	}
	s.truth.finish(s.end)
	s.stats.Records = len(s.recs)
	if s.cfg.InjectFaults {
		s.recs, s.stats.InjectedFaults = injectFaults(s.rng, s.recs)
	}
	s.stats.TotalWithFaults = len(s.recs)
	s.stats.FailedBookings = s.truth.failedBookings
	return Output{
		Records:    s.recs,
		Truth:      s.truth,
		Stats:      s.stats,
		Dispatcher: s.disp,
		Config:     s.cfg,
	}
}

// schedule registers fn to fire at t (clamped to the simulation window).
func (s *Sim) schedule(t time.Time, fn func()) {
	if t.After(s.end) {
		return
	}
	s.seq++
	s.events.push(event{at: t.UnixNano(), seq: s.seq, fn: fn})
}

// after schedules fn d from now.
func (s *Sim) after(d time.Duration, fn func()) { s.schedule(s.now.Add(d), fn) }

// emit appends one MDT record for tx if the taxi is in the observed sample.
// pos is jittered by GPS noise (~sigma 6 m).
func (s *Sim) emit(tx *taxi, state mdt.State, pos geo.Point, speedKmh float64) {
	s.truth.transition(tx.lastState, state)
	tx.lastState = state
	if !tx.observed {
		return
	}
	noisy := geo.Offset(pos, s.rng.NormFloat64()*6, s.rng.NormFloat64()*6)
	s.recs = append(s.recs, mdt.Record{
		Time:   s.now,
		TaxiID: tx.id,
		Pos:    noisy,
		Speed:  math.Max(0, speedKmh),
		State:  state,
	})
}

// uniform returns a uniform duration in [lo, hi).
func (s *Sim) uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(s.rng.Int63n(int64(hi-lo)))
}

// expDur draws an exponential duration with the given mean seconds.
func (s *Sim) expDur(meanSec float64) time.Duration {
	return time.Duration(s.rng.ExpFloat64() * meanSec * float64(time.Second))
}

// speedIn returns a uniform speed in [lo, hi) km/h.
func (s *Sim) speedIn(lo, hi float64) float64 { return lo + s.rng.Float64()*(hi-lo) }

// hour returns the simulated hour of day.
func (s *Sim) hour() int { return s.now.Hour() }

// dayKind returns the weekday/weekend regime at the current sim time.
func (s *Sim) dayKind() citymap.DayKind {
	return citymap.DayKindOf(int(s.now.Weekday()))
}

// randomIslandPoint returns a uniform point in the drivable island frame.
func (s *Sim) randomIslandPoint() geo.Point {
	r := citymap.Island
	return citymap.IslandClamp(geo.Point{
		Lat: r.MinLat + s.rng.Float64()*(r.MaxLat-r.MinLat),
		Lon: r.MinLon + s.rng.Float64()*(r.MaxLon-r.MinLon),
	})
}

// tripDestination picks where an occupied taxi goes: a distance drawn from
// an exponential with ~5 km mean (typical Singapore trip), occasionally a
// cross-island ride, sometimes snapped near a landmark.
func (s *Sim) tripDestination(from geo.Point) geo.Point {
	dist := 1500 + s.rng.ExpFloat64()*4000
	if dist > 22000 {
		dist = 22000
	}
	dest := citymap.IslandClamp(geo.Destination(from, s.rng.Float64()*360, dist))
	if s.rng.Float64() < 0.35 && len(s.city.Landmarks) > 0 {
		// Snap to the landmark nearest the raw destination: trips end at
		// malls, stations and estates more often than at random curbs.
		if lm, d, ok := s.city.NearestLandmark(dest); ok && d < 4000 {
			dest = geo.Offset(lm.Pos, s.rng.NormFloat64()*250, s.rng.NormFloat64()*250)
		}
	}
	return dest
}

// pool management -----------------------------------------------------------

// poolAdd returns tx to the roaming-free pool.
func (s *Sim) poolAdd(tx *taxi) {
	if tx.poolIdx >= 0 {
		return
	}
	tx.poolIdx = len(s.pool)
	s.pool = append(s.pool, tx.index)
}

// poolRemove removes tx from the pool (swap-delete).
func (s *Sim) poolRemove(tx *taxi) {
	i := tx.poolIdx
	if i < 0 {
		return
	}
	last := len(s.pool) - 1
	moved := s.pool[last]
	s.pool[i] = moved
	s.taxis[moved].poolIdx = i
	s.pool = s.pool[:last]
	tx.poolIdx = -1
}

// poolTakeRandom removes and returns a random roaming taxi, or nil.
func (s *Sim) poolTakeRandom() *taxi {
	if len(s.pool) == 0 {
		return nil
	}
	tx := s.taxis[s.pool[s.rng.Intn(len(s.pool))]]
	s.poolRemove(tx)
	return tx
}

// freeTaxisWithin counts FREE taxis inside the radius: roaming pool members
// plus taxis queued at spots in range. This feeds the dispatching circle.
func (s *Sim) freeTaxisWithin(center geo.Point, radius float64) int {
	n := 0
	for _, i := range s.pool {
		if geo.Equirect(center, s.taxis[i].pos) <= radius {
			n++
		}
	}
	for _, sp := range s.spots {
		if sp.taxiQLen > 0 && geo.Equirect(center, sp.lm.Pos) <= radius {
			n += sp.taxiQLen
		}
	}
	return n
}

// FreeTaxisWithin exposes the dispatching-circle count for tests.
func (s *Sim) FreeTaxisWithin(center geo.Point, radius float64) int {
	return s.freeTaxisWithin(center, radius)
}

func taxiID(i int) string { return fmt.Sprintf("SH%04dA", i+1) }
