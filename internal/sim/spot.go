package sim

import (
	"math"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// spot is the simulator's view of one landmark's two-sided queue: a FIFO of
// waiting FREE taxis, a FIFO of waiting passengers, and a set of boarding
// bays (Lots) that serialize pickups.
type spot struct {
	idx int
	lm  citymap.Landmark

	taxiQ    []*queuedTaxi
	taxiHead int
	taxiQLen int // active (non-removed) queued taxis

	paxQ    []*pax
	paxHead int
	paxQLen int
	// priority holds booked riders: a booking bid won by a queued taxi is
	// served at the head of the line, through the same boarding bay (so
	// stand departures stay single-file).
	priority []*pax

	// One boarding bay: pickups are single-file, which is what lets a taxi
	// queue and a passenger queue coexist (the C1 context) — matching is
	// service-limited, not instantaneous — and keeps departure intervals
	// regular so the QCD thresholds behave like the paper's.
	baysBusy int
}

type queuedTaxi struct {
	tx      *taxi
	arrived time.Time
	removed bool // reneged or popped
}

type pax struct {
	arrived time.Time
	removed bool
}

func (s *Sim) initSpots() {
	s.spots = make([]*spot, len(s.city.Landmarks))
	for i, lm := range s.city.Landmarks {
		sp := &spot{idx: i, lm: lm}
		s.spots[i] = sp
		// Stagger process starts.
		s.schedule(s.cfg.Start.Add(s.expDur(30)), func() { s.spotTaxiProcess(sp) })
		s.schedule(s.cfg.Start.Add(s.expDur(30)), func() { s.spotPaxProcess(sp) })
		s.schedule(s.cfg.Start.Add(s.expDur(300)), func() { s.spotBusyAbuseProcess(sp) })
	}
}

// rates returns the spot's current arrival rates per second.
func (s *Sim) rates(sp *spot) (paxPerSec, taxiPerSec, bookingFrac float64) {
	r := citymap.RatesAt(sp.lm, s.hour(), s.dayKind())
	return r.PassengersPerHour / 3600 * s.cfg.RateScale,
		r.TaxisPerHour / 3600 * s.cfg.RateScale,
		r.BookingFraction
}

// nextAfter converts a per-second rate into the next event delay, polling
// again in a few minutes when the rate is (near) zero so the process picks
// back up when the hour profile rises.
func (s *Sim) nextAfter(perSec float64) time.Duration {
	if perSec < 1e-7 {
		return s.uniform(4*time.Minute, 8*time.Minute)
	}
	return s.expDur(1 / perSec)
}

// spotTaxiProcess injects FREE taxis heading for the spot.
func (s *Sim) spotTaxiProcess(sp *spot) {
	_, taxiRate, _ := s.rates(sp)
	s.after(s.nextAfter(taxiRate), func() { s.spotTaxiProcess(sp) })
	if taxiRate < 1e-7 {
		return
	}
	// Balk when the queue is already deep and nobody is waiting (drivers
	// see a dead line and keep cruising), and always when the stand's
	// physical capacity is full.
	if sp.paxQLen == 0 && sp.taxiQLen >= 2+sp.lm.Lots {
		return
	}
	if sp.taxiQLen >= 4+2*sp.lm.Lots {
		return
	}
	tx := s.poolTakeRandom()
	if tx == nil {
		return
	}
	s.setMode(tx, modeToSpot)
	// En-route record at the taxi's previous position.
	s.emit(tx, mdt.Free, tx.pos, s.speedIn(20, 45))
	s.after(s.uniform(time.Minute, 4*time.Minute), func() { s.taxiJoinsQueue(sp, tx) })
}

// taxiJoinsQueue puts tx at the back of the spot's taxi queue and begins
// crawl logging.
func (s *Sim) taxiJoinsQueue(sp *spot, tx *taxi) {
	tx.pos = s.nearSpot(sp)
	s.setMode(tx, modeQueued)
	entry := &queuedTaxi{tx: tx, arrived: s.now}
	sp.taxiQ = append(sp.taxiQ, entry)
	sp.taxiQLen++
	s.truth.taxiQueueChanged(sp, s.now, sp.taxiQLen+sp.baysBusy)
	s.emit(tx, mdt.Free, tx.pos, s.speedIn(0, 7))
	epoch := tx.epoch
	s.after(s.crawlGap(), func() { s.crawlLog(sp, tx, epoch) })
	patience := s.uniform(8*time.Minute, 18*time.Minute)
	s.after(patience, func() { s.taxiRenege(sp, entry, epoch) })
	s.tryMatch(sp)
}

// crawlGap is the spacing between queue crawl records.
func (s *Sim) crawlGap() time.Duration { return s.uniform(25*time.Second, 55*time.Second) }

// nearSpot returns a position a few meters from the spot center (the
// physical queue area).
func (s *Sim) nearSpot(sp *spot) geo.Point {
	return geo.Offset(sp.lm.Pos, s.rng.NormFloat64()*5, s.rng.NormFloat64()*5)
}

// crawlLog emits low-speed FREE records while the taxi waits in line or
// occupies a bay.
func (s *Sim) crawlLog(sp *spot, tx *taxi, epoch uint64) {
	if tx.epoch != epoch || (tx.mode != modeQueued && tx.mode != modeBoarding) {
		return
	}
	tx.pos = s.nearSpot(sp)
	s.emit(tx, mdt.Free, tx.pos, s.speedIn(0, 7))
	s.after(s.crawlGap(), func() { s.crawlLog(sp, tx, epoch) })
}

// taxiRenege pulls a still-waiting taxi out of the line.
func (s *Sim) taxiRenege(sp *spot, entry *queuedTaxi, epoch uint64) {
	if entry.removed || entry.tx.epoch != epoch {
		return
	}
	entry.removed = true
	sp.taxiQLen--
	s.truth.taxiQueueChanged(sp, s.now, sp.taxiQLen+sp.baysBusy)
	s.stats.TaxiReneges++
	tx := entry.tx
	// Departure record at speed with no state change: PEA must discard the
	// whole crawl (rule 3).
	s.emit(tx, mdt.Free, tx.pos, s.speedIn(15, 40))
	s.toRoaming(tx)
}

// spotPaxProcess injects passengers.
func (s *Sim) spotPaxProcess(sp *spot) {
	paxRate, _, bookingFrac := s.rates(sp)
	s.after(s.nextAfter(paxRate), func() { s.spotPaxProcess(sp) })
	if paxRate < 1e-7 {
		return
	}
	// A passenger facing a visible queue is likelier to book instead of
	// lining up (§5.3 notes the booking fee keeps the base rate low, but a
	// long line changes the calculus).
	if sp.paxQLen >= 3 {
		bookingFrac += 0.25 * math.Min(1, float64(sp.paxQLen)/8)
	}
	if s.rng.Float64() < bookingFrac {
		s.spotBooking(sp)
		return
	}
	s.paxJoinsQueue(sp)
}

// paxJoinsQueue adds a street-hail passenger to the spot queue.
func (s *Sim) paxJoinsQueue(sp *spot) {
	p := &pax{arrived: s.now}
	sp.paxQ = append(sp.paxQ, p)
	sp.paxQLen++
	s.truth.paxQueueChanged(sp, s.now, sp.paxQLen)
	patience := s.uniform(8*time.Minute, 22*time.Minute)
	s.after(patience, func() { s.paxRenege(sp, p) })
	s.tryMatch(sp)
}

// paxRenege makes a waiting passenger give up; a share of them fall back to
// booking, which fails exactly when the taxi drought persists (Table 8's
// failed-booking signal).
func (s *Sim) paxRenege(sp *spot, p *pax) {
	if p.removed {
		return
	}
	p.removed = true
	sp.paxQLen--
	s.truth.paxQueueChanged(sp, s.now, sp.paxQLen)
	s.stats.PaxReneges++
	if s.rng.Float64() < 0.8 {
		s.spotBooking(sp)
	}
}

// spotBooking runs a booking request with the spot as pickup point.
func (s *Sim) spotBooking(sp *spot) {
	avail := s.freeTaxisWithin(sp.lm.Pos, s.disp.Radius())
	if !s.disp.Request(s.now, sp.lm.Name, sp.lm.Pos, avail) {
		s.truth.failedBookings++
		s.truth.spotFailedBooking(sp, s.now)
		return
	}
	// The dispatch system sends the booking to the nearest bidding taxi,
	// which is usually a roaming one (stand-head drivers hold out for the
	// street queue): the winner arrives ONCALL and picks its rider up at
	// the curb. This ONCALL departure share is the signal QCD's Routine 2
	// keys on. Only when no roaming taxi can be found does the stand head
	// serve the rider, as a priority passenger through the boarding bay.
	if tx := s.takeNearestPooled(sp.lm.Pos, s.disp.Radius()*3); tx != nil {
		s.runBookingPickupAtSpot(tx, sp)
		return
	}
	if sp.taxiQLen > 0 {
		p := &pax{arrived: s.now}
		sp.priority = append(sp.priority, p)
		sp.paxQLen++
		s.truth.paxQueueChanged(sp, s.now, sp.paxQLen)
		s.tryMatch(sp)
	}
}

// runBookingPickupAtSpot is runBookingPickup plus spot ground-truth
// accounting.
func (s *Sim) runBookingPickupAtSpot(tx *taxi, sp *spot) {
	s.setMode(tx, modeOnCall)
	s.emit(tx, mdt.OnCall, tx.pos, s.speedIn(20, 45))
	travel := s.travelTime(tx.pos, sp.lm.Pos)
	s.after(travel, func() {
		tx.pos = s.nearSpot(sp)
		s.emit(tx, mdt.Arrived, tx.pos, s.speedIn(0, 5))
		if s.rng.Float64() < 0.04 {
			s.after(s.uniform(4*time.Minute, 10*time.Minute), func() {
				s.emit(tx, mdt.NoShow, tx.pos, 0)
				s.stats.NoShows++
				s.after(s.uniform(5*time.Second, 10*time.Second), func() {
					s.emit(tx, mdt.Free, tx.pos, s.speedIn(10, 30))
					s.toRoaming(tx)
				})
			})
			return
		}
		s.after(s.uniform(30*time.Second, 120*time.Second), func() {
			s.emit(tx, mdt.POB, tx.pos, s.speedIn(0, 6))
			s.stats.BookingPickups++
			s.truth.spotPickup(sp)
			s.startTrip(tx, tx.pos)
		})
	})
}

// popTaxi removes and returns the head active taxi entry, or nil.
func (s *Sim) popTaxi(sp *spot) *queuedTaxi {
	for sp.taxiHead < len(sp.taxiQ) {
		e := sp.taxiQ[sp.taxiHead]
		sp.taxiHead++
		if sp.taxiHead > 256 && sp.taxiHead*2 >= len(sp.taxiQ) {
			sp.taxiQ = append(sp.taxiQ[:0], sp.taxiQ[sp.taxiHead:]...)
			sp.taxiHead = 0
		}
		if e.removed {
			continue
		}
		e.removed = true
		sp.taxiQLen--
		return e
	}
	return nil
}

// popPax removes and returns the head active passenger, or nil. Booked
// riders in the priority lane go first.
func (s *Sim) popPax(sp *spot) *pax {
	for len(sp.priority) > 0 {
		p := sp.priority[0]
		sp.priority = sp.priority[1:]
		if p.removed {
			continue
		}
		p.removed = true
		sp.paxQLen--
		return p
	}
	for sp.paxHead < len(sp.paxQ) {
		p := sp.paxQ[sp.paxHead]
		sp.paxHead++
		if sp.paxHead > 256 && sp.paxHead*2 >= len(sp.paxQ) {
			sp.paxQ = append(sp.paxQ[:0], sp.paxQ[sp.paxHead:]...)
			sp.paxHead = 0
		}
		if p.removed {
			continue
		}
		p.removed = true
		sp.paxQLen--
		return p
	}
	return nil
}

// tryMatch pairs waiting taxis with waiting passengers while a bay is free.
func (s *Sim) tryMatch(sp *spot) {
	for sp.baysBusy < 1 && sp.taxiQLen > 0 && sp.paxQLen > 0 {
		entry := s.popTaxi(sp)
		p := s.popPax(sp)
		if entry == nil || p == nil {
			return
		}
		sp.baysBusy++
		// Queue length for the monitor includes bay occupants, so the
		// monitored count is unchanged by the queue->bay move; the pax
		// queue shrank though.
		s.truth.paxQueueChanged(sp, s.now, sp.paxQLen)
		s.truth.paxWait(sp, s.now.Sub(p.arrived))
		tx := entry.tx
		s.setMode(tx, modeBoarding)
		// Keep crawl logging alive through boarding.
		epoch := tx.epoch
		s.after(s.crawlGap(), func() { s.crawlLog(sp, tx, epoch) })
		// Boarding speed is mode-dependent and is what separates the
		// contexts' signatures: a taxi rolling up to waiting passengers is
		// a quick curbside grab; a taxi that sat in a stand line boards at
		// stand pace (the passenger walks to the head bay).
		var board time.Duration
		if sp.taxiQLen > 0 || s.now.Sub(entry.arrived) > 45*time.Second {
			board = s.uniform(70*time.Second, 100*time.Second) // stand mode
		} else {
			board = s.uniform(8*time.Second, 18*time.Second) // curb mode
		}
		s.after(board, func() { s.finishBoarding(sp, tx, entry.arrived) })
	}
}

// finishBoarding emits the POB pickup record and launches the trip.
func (s *Sim) finishBoarding(sp *spot, tx *taxi, queuedAt time.Time) {
	sp.baysBusy--
	s.truth.taxiQueueChanged(sp, s.now, sp.taxiQLen+sp.baysBusy)
	s.emit(tx, mdt.POB, tx.pos, s.speedIn(0, 6))
	s.stats.SpotPickups++
	s.truth.spotPickup(sp)
	s.truth.taxiWait(sp, s.now.Sub(queuedAt))
	s.startTrip(tx, tx.pos)
	s.tryMatch(sp)
}

// spotBusyAbuseProcess reproduces the §7.2 driver-behavior finding: when
// only passengers are queuing, a few taxis slip in with the BUSY state and
// leave with POB, cherry-picking passengers.
func (s *Sim) spotBusyAbuseProcess(sp *spot) {
	s.after(s.uniform(8*time.Minute, 16*time.Minute), func() { s.spotBusyAbuseProcess(sp) })
	if sp.paxQLen < 5 || sp.taxiQLen > 0 {
		return
	}
	if s.rng.Float64() > 0.45 {
		return
	}
	tx := s.poolTakeRandom()
	if tx == nil {
		return
	}
	s.setMode(tx, modeBoarding)
	tx.pos = s.nearSpot(sp)
	s.emit(tx, mdt.Busy, tx.pos, s.speedIn(0, 7))
	if p := s.popPax(sp); p != nil {
		s.truth.paxQueueChanged(sp, s.now, sp.paxQLen)
		s.truth.paxWait(sp, s.now.Sub(p.arrived))
	}
	s.after(s.uniform(30*time.Second, 70*time.Second), func() {
		s.emit(tx, mdt.POB, tx.pos, s.speedIn(0, 6))
		s.stats.BusyStatePicks++
		s.truth.spotBusyPickup(sp)
		s.startTrip(tx, tx.pos)
	})
}
