package sim

import (
	"sort"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// smallConfig is a fast configuration used by most tests: a quarter-scale
// city with a few hundred taxis and a full day.
func smallConfig(seed int64) Config {
	return Config{
		Seed: seed,
		City: citymap.Generate(seed+100, 0.2),
	}
}

func runSmall(t *testing.T, seed int64) Output {
	t.Helper()
	return Run(smallConfig(seed))
}

func TestRunProducesRecords(t *testing.T) {
	out := runSmall(t, 1)
	if len(out.Records) == 0 {
		t.Fatal("no records produced")
	}
	// With 400 taxis (~60% observed) and event-driven logging we expect at
	// least tens of thousands of records in a day.
	if len(out.Records) < 50000 {
		t.Fatalf("only %d records produced; simulator likely stalled", len(out.Records))
	}
}

func TestRecordsSortedByTime(t *testing.T) {
	out := runSmall(t, 2)
	if !sort.SliceIsSorted(out.Records, func(i, j int) bool {
		return out.Records[i].Time.Before(out.Records[j].Time)
	}) {
		t.Fatal("records not in time order")
	}
}

func TestRecordsWithinWindow(t *testing.T) {
	cfg := smallConfig(3)
	out := Run(cfg)
	start := out.Config.Start
	end := start.Add(out.Config.Duration)
	for _, r := range out.Records {
		if r.Time.Before(start) || r.Time.After(end) {
			t.Fatalf("record at %v outside [%v, %v]", r.Time, start, end)
		}
	}
}

func TestNoIllegalTransitions(t *testing.T) {
	out := runSmall(t, 4)
	if out.Truth.IllegalTransitions != 0 {
		t.Fatalf("%d illegal state transitions emitted", out.Truth.IllegalTransitions)
	}
}

func TestPerTaxiTransitionsLegal(t *testing.T) {
	// Independent check over the emitted dataset itself (not the internal
	// audit): every observed taxi's record sequence must follow Fig. 3.
	out := runSmall(t, 5)
	for id, tr := range mdt.SplitByTaxi(out.Records) {
		for i := 1; i < len(tr); i++ {
			if !mdt.LegalTransition(tr[i-1].State, tr[i].State) {
				t.Fatalf("taxi %s: illegal %v -> %v at %v",
					id, tr[i-1].State, tr[i].State, tr[i].Time)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(smallConfig(6))
	b := Run(smallConfig(6))
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if !a.Records[i].Equal(b.Records[i]) {
			t.Fatalf("record %d differs between equal-seed runs", i)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestObservedFraction(t *testing.T) {
	cfg := smallConfig(7)
	out := Run(cfg)
	ids := map[string]bool{}
	for _, r := range out.Records {
		ids[r.TaxiID] = true
	}
	frac := float64(len(ids)) / float64(out.Config.NumTaxis)
	if frac < 0.5 || frac > 0.7 {
		t.Fatalf("observed taxi fraction = %.2f, want ~0.6", frac)
	}
}

func TestJobMixPlausible(t *testing.T) {
	out := runSmall(t, 8)
	st := out.Stats
	if st.SpotPickups == 0 || st.StreetJobs == 0 || st.ScatteredSlow == 0 || st.BookingPickups == 0 {
		t.Fatalf("some job kinds never occurred: %+v", st)
	}
	if st.BusyStatePicks == 0 {
		t.Errorf("no BUSY-state pickups occurred (§7.2 behavior missing): %+v", st)
	}
	total, failed := out.Dispatcher.Totals()
	if total == 0 {
		t.Fatal("no bookings requested")
	}
	if failed != st.FailedBookings {
		t.Fatalf("dispatcher failures %d != stats %d", failed, st.FailedBookings)
	}
}

func TestSpotsAccumulatePickups(t *testing.T) {
	out := runSmall(t, 9)
	withPickups := 0
	for _, sp := range out.Truth.Spots {
		if sp.Pickups > 0 {
			withPickups++
		}
	}
	if withPickups < len(out.Truth.Spots)/2 {
		t.Fatalf("only %d/%d spots saw pickups", withPickups, len(out.Truth.Spots))
	}
}

func TestSlowPickupSignatureAtSpots(t *testing.T) {
	// The data must contain, at busy spots, sequences of >=2 consecutive
	// low-speed FREE records followed by a low-speed POB: the signature
	// Algorithm 1 extracts.
	out := runSmall(t, 10)
	busiest := out.Truth.Spots[0]
	for _, sp := range out.Truth.Spots {
		if sp.Pickups > busiest.Pickups {
			busiest = sp
		}
	}
	found := 0
	for _, tr := range mdt.SplitByTaxi(out.Records) {
		for i := 2; i < len(tr); i++ {
			if tr[i].State == mdt.POB && tr[i].Speed <= 10 &&
				tr[i-1].State == mdt.Free && tr[i-1].Speed <= 10 &&
				tr[i-2].Speed <= 10 &&
				geo.Equirect(tr[i].Pos, busiest.Landmark.Pos) < 60 {
				found++
			}
		}
	}
	if found < 10 {
		t.Fatalf("only %d slow-pickup signatures near the busiest spot (pickups=%d)",
			found, busiest.Pickups)
	}
}

func TestGroundTruthQueueLogs(t *testing.T) {
	out := runSmall(t, 11)
	start := out.Config.Start
	anyTaxiQueue := false
	for _, sp := range out.Truth.Spots {
		for i := 1; i < len(sp.TaxiQueueLog); i++ {
			if sp.TaxiQueueLog[i].Time.Before(sp.TaxiQueueLog[i-1].Time) {
				t.Fatal("taxi queue log out of order")
			}
			if sp.TaxiQueueLog[i].Len < 0 {
				t.Fatal("negative taxi queue length")
			}
		}
		if sp.AvgTaxiQueueLen(start.Add(17*time.Hour), start.Add(20*time.Hour)) >= 1 {
			anyTaxiQueue = true
		}
	}
	if !anyTaxiQueue {
		t.Error("no spot sustained a taxi queue during the evening peak")
	}
}

func TestPassengerQueuesForm(t *testing.T) {
	out := runSmall(t, 12)
	start := out.Config.Start
	anyPaxQueue := false
	for _, sp := range out.Truth.Spots {
		if sp.MaxPaxQueueLen(start.Add(7*time.Hour), start.Add(22*time.Hour)) >= 3 {
			anyPaxQueue = true
			break
		}
	}
	if !anyPaxQueue {
		t.Error("no passenger queue of length >= 3 ever formed")
	}
}

func TestFaultInjection(t *testing.T) {
	cfg := smallConfig(13)
	cfg.InjectFaults = true
	out := Run(cfg)
	if out.Stats.InjectedFaults == 0 {
		t.Fatal("fault injection produced no faults")
	}
	rate := float64(out.Stats.InjectedFaults) / float64(out.Stats.TotalWithFaults)
	// Paper: ~2.8% erroneous records.
	if rate < 0.015 || rate > 0.045 {
		t.Fatalf("fault rate = %.3f, want ~0.028", rate)
	}
	// The dataset must contain out-of-island GPS fixes and duplicates.
	outOfIsland := 0
	dups := 0
	for i, r := range out.Records {
		if !citymap.Island.Contains(r.Pos) {
			outOfIsland++
		}
		if i > 0 && r.Equal(out.Records[i-1]) {
			dups++
		}
	}
	if outOfIsland == 0 {
		t.Error("no out-of-island GPS outliers")
	}
	if dups == 0 {
		t.Error("no duplicate records")
	}
	// Faults must not break time ordering.
	if !sort.SliceIsSorted(out.Records, func(i, j int) bool {
		return out.Records[i].Time.Before(out.Records[j].Time)
	}) {
		t.Error("fault injection broke time ordering")
	}
}

func TestWeekendVsWeekdayVolume(t *testing.T) {
	// A commuter-heavy city should see more spot pickups on a weekday
	// than the same city on a Sunday.
	city := citymap.Generate(200, 0.2)
	wd := Run(Config{Seed: 14, City: city,
		Start: time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)}) // Monday
	we := Run(Config{Seed: 14, City: city,
		Start: time.Date(2026, 1, 4, 0, 0, 0, 0, time.UTC)}) // Sunday
	if wd.Stats.SpotPickups <= we.Stats.SpotPickups {
		t.Errorf("weekday spot pickups (%d) not above Sunday (%d)",
			wd.Stats.SpotPickups, we.Stats.SpotPickups)
	}
}

func TestWeekendOnlySpotActivity(t *testing.T) {
	city := citymap.Generate(201, 0.2)
	var parkIdx = -1
	for i, lm := range city.Landmarks {
		if lm.Name == "West Leisure Park" {
			parkIdx = i
		}
	}
	if parkIdx < 0 {
		t.Fatal("leisure park missing from city")
	}
	wd := Run(Config{Seed: 15, City: city,
		Start: time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)})
	we := Run(Config{Seed: 15, City: city,
		Start: time.Date(2026, 1, 4, 0, 0, 0, 0, time.UTC)})
	if wd.Truth.Spots[parkIdx].Pickups > 0 {
		t.Errorf("weekend-only park had %d weekday pickups", wd.Truth.Spots[parkIdx].Pickups)
	}
	if we.Truth.Spots[parkIdx].Pickups == 0 {
		t.Error("weekend-only park had no Sunday pickups")
	}
}

func TestFreeTaxisWithin(t *testing.T) {
	s := New(smallConfig(16))
	// All taxis start pooled; counting within the whole island must see
	// the entire fleet.
	n := s.FreeTaxisWithin(citymap.Island.Center(), 1e6)
	if n != s.cfg.NumTaxis {
		t.Fatalf("FreeTaxisWithin(island) = %d, want %d", n, s.cfg.NumTaxis)
	}
	if s.FreeTaxisWithin(citymap.Island.Center(), 0.0001) > s.cfg.NumTaxis {
		t.Fatal("tiny radius returned more than fleet size")
	}
}

func TestShortRun(t *testing.T) {
	cfg := smallConfig(17)
	cfg.Duration = time.Hour
	out := Run(cfg)
	if len(out.Records) == 0 {
		t.Fatal("1-hour run produced no records")
	}
	end := cfg.Start.Add(time.Hour)
	_ = end
	if out.Truth.End() != out.Config.Start.Add(time.Hour) {
		t.Fatalf("truth end = %v", out.Truth.End())
	}
}

func TestAllElevenStatesAppear(t *testing.T) {
	// The dataset must exercise the complete Table 1 state vocabulary —
	// otherwise the analytics never sees the states it filters on.
	out := runSmall(t, 19)
	seen := map[mdt.State]bool{}
	for _, r := range out.Records {
		seen[r.State] = true
	}
	for st := mdt.State(0); int(st) < mdt.NumStates; st++ {
		if !seen[st] {
			t.Errorf("state %v never appears in a simulated day", st)
		}
	}
}

func TestMultiDayRun(t *testing.T) {
	cfg := smallConfig(20)
	cfg.Duration = 48 * time.Hour
	out := Run(cfg)
	// Records must span both days.
	day2 := out.Config.Start.Add(24 * time.Hour)
	var before, after int
	for _, r := range out.Records {
		if r.Time.Before(day2) {
			before++
		} else {
			after++
		}
	}
	if before == 0 || after == 0 {
		t.Fatalf("48h run did not span both days: %d/%d", before, after)
	}
	// Day 2's volume should be the same order as day 1's (the simulator
	// must not wind down).
	if after < before/2 {
		t.Fatalf("day 2 has %d records vs day 1's %d; simulation wound down", after, before)
	}
	if out.Truth.IllegalTransitions != 0 {
		t.Fatalf("%d illegal transitions in multi-day run", out.Truth.IllegalTransitions)
	}
}

func TestSpeedDistribution(t *testing.T) {
	out := runSmall(t, 18)
	low, high := 0, 0
	for _, r := range out.Records {
		if r.Speed < 0 {
			t.Fatal("negative speed")
		}
		if r.Speed <= 10 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("degenerate speed distribution: low=%d high=%d", low, high)
	}
}
