// Lucky Plaza: the §6.2.3 case study.
//
// Simulates a Sunday, finds the queue spot detected at the Lucky Plaza mall
// analogue, prints its full-day queue-context timeline the way Table 9
// does, and compares each labeled period with the simulator's ground-truth
// queue lengths.
//
//	go run ./examples/luckyplaza
package main

import (
	"fmt"
	"log"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/sim"
)

func main() {
	city := citymap.Generate(11, 0.2)
	sunday := time.Date(2026, 1, 4, 0, 0, 0, 0, time.UTC)
	day := sim.Run(sim.Config{Seed: 11, City: city, Start: sunday, InjectFaults: true})
	records, _ := clean.Clean(day.Records, clean.Config{ValidFrame: citymap.Island})

	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 40}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	result, err := engine.Analyze(records)
	if err != nil {
		log.Fatal(err)
	}

	// Match the detected spot to the Lucky Plaza landmark.
	lp, _ := city.Find("Lucky Plaza")
	var spot *core.SpotAnalysis
	for i := range result.Spots {
		if geo.Equirect(result.Spots[i].Spot.Pos, lp.Pos) < 30 {
			spot = &result.Spots[i]
			break
		}
	}
	if spot == nil {
		log.Fatal("Lucky Plaza spot not detected; try another seed")
	}
	var truth *sim.SpotTruth
	for i, lm := range city.Landmarks {
		if lm.Name == "Lucky Plaza" {
			truth = day.Truth.Spots[i]
		}
	}

	fmt.Printf("Lucky Plaza queue spot: %v (%d pickups on Sunday)\n",
		spot.Spot.Pos, spot.Spot.PickupCount)
	fmt.Printf("thresholds: %v\n\n", spot.Thresholds)
	fmt.Println("slot         context       true taxi queue   true pax queue")
	fmt.Println("--------------------------------------------------------------")
	grid := result.Config.Grid
	// Merge consecutive same-label slots into Table 9 style ranges.
	for j := 0; j < len(spot.Labels); {
		k := j
		for k < len(spot.Labels) && spot.Labels[k] == spot.Labels[j] {
			k++
		}
		from, _ := grid.Bounds(j)
		_, to := grid.Bounds(k - 1)
		avgTaxi := truth.AvgTaxiQueueLen(from, to)
		avgPax := truth.AvgPaxQueueLen(from, to)
		fmt.Printf("%s-%s  %-12v %10.1f %16.1f\n",
			from.Format("15:04"), to.Format("15:04"), spot.Labels[j], avgTaxi, avgPax)
		j = k
	}

	fmt.Println("\npaper (Table 9): C1/C3 around midnight, C4 through the early")
	fmt.Println("morning, C1<->C2 during the 11:00-20:00 shopping peak, C4 late.")
}
