// Realtime: the online engine (§7.1's real-time requirement).
//
// A batch run overnight fixes the queue-spot locations and QCD thresholds;
// the day's MDT feed is then replayed record by record through the
// streaming engine, which emits pickup events and finalized slot contexts
// as they happen and can answer "what is the context right now?" with a
// provisional estimate mid-slot.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/sim"
	"taxiqueue/internal/stream"
)

func main() {
	city := citymap.Generate(41, 0.15)

	// "Yesterday": the batch run that fixes spots and thresholds.
	yesterday := sim.Run(sim.Config{Seed: 41, City: city, InjectFaults: true})
	recs, _ := clean.Clean(yesterday.Records, clean.Config{ValidFrame: citymap.Island})
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 40}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := engine.Analyze(recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch run: %d spots, thresholds calibrated\n", len(batch.Spots))

	// "Today": a fresh day streamed through the online engine.
	todayStart := yesterday.Config.Start.Add(24 * time.Hour)
	today := sim.Run(sim.Config{Seed: 42, City: city, Start: todayStart, InjectFaults: true})
	cleanToday, _ := clean.Clean(today.Records, clean.Config{ValidFrame: citymap.Island})

	spots := make([]core.QueueSpot, len(batch.Spots))
	ths := make([]core.Thresholds, len(batch.Spots))
	for i := range batch.Spots {
		spots[i] = batch.Spots[i].Spot
		ths[i] = batch.Spots[i].Thresholds
	}
	live := stream.NewLive(stream.Config{
		Spots:      spots,
		Thresholds: ths,
		Grid:       core.DaySlots(todayStart),
		Amplify:    core.PaperAmplification,
	})

	// Watch the busiest spot; print its slot closures as they stream in,
	// and take a provisional estimate at 18:10.
	watch := 0
	estimateAt := todayStart.Add(18*time.Hour + 10*time.Minute)
	estimated := false
	pickups, slots := 0, 0
	for _, rec := range cleanToday {
		if !estimated && rec.Time.After(estimateAt) {
			if q, ok := live.CurrentEstimate(watch, estimateAt); ok {
				fmt.Printf(">>> 18:10 provisional context at watched spot: %v (slot still open)\n", q)
			} else {
				fmt.Println(">>> 18:10: no provisional estimate yet (no completed pickups this slot)")
			}
			estimated = true
		}
		for _, ev := range live.Ingest(rec) {
			switch ev.Kind {
			case stream.PickupDetected:
				pickups++
			case stream.SlotClosed:
				slots++
				if ev.Spot == watch {
					from, to := core.DaySlots(todayStart).Bounds(ev.Slot)
					fmt.Printf("%s-%s finalized: %-4v (wait %v, %0.f arrivals)\n",
						from.Format("15:04"), to.Format("15:04"), ev.Label,
						ev.Features.TWait.Round(time.Second), ev.Features.NArr)
				}
			}
		}
	}
	for _, ev := range live.Flush() {
		if ev.Kind == stream.SlotClosed {
			slots++
		}
	}
	fmt.Printf("\nstreamed %d records: %d pickup events, %d slots finalized\n",
		len(cleanToday), pickups, slots)
}
