// Dashboard: the §7.1 deployment shape, self-contained.
//
// It runs the backend analytic pipeline once, exposes the queue spots and a
// vehicle monitor over HTTP on a random local port (the way the deployed
// system feeds its web frontend), queries its own API like a frontend
// would, prints what it got back, and exits.
//
//	go run ./examples/dashboard
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/monitor"
	"taxiqueue/internal/sim"
)

type spotDTO struct {
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	Zone     string  `json:"zone"`
	Context  string  `json:"context"`
	Landmark string  `json:"landmark,omitempty"`
}

func main() {
	// Backend: one analyzed day.
	city := citymap.Generate(31, 0.15)
	day := sim.Run(sim.Config{Seed: 31, City: city, InjectFaults: true})
	records, _ := clean.Clean(day.Records, clean.Config{ValidFrame: citymap.Island})
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 40}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	result, err := engine.Analyze(records)
	if err != nil {
		log.Fatal(err)
	}
	grid := result.Config.Grid
	log.Printf("backend ready: %d queue spots", len(result.Spots))

	// Monitor service over the busiest spot, fed from ground truth.
	monSvc := monitor.NewService()
	busiest := result.Spots[0]
	counter := monitor.NewAreaCounter("busiest", geo.CirclePolygon(busiest.Spot.Pos, 40, 12))
	for i, lm := range city.Landmarks {
		if geo.Equirect(lm.Pos, busiest.Spot.Pos) < 30 {
			for _, s := range day.Truth.Spots[i].TaxiQueueLog {
				if err := counter.Observe(s.Time, s.Len); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	monSvc.Add(counter)

	// HTTP API.
	mux := http.NewServeMux()
	mux.HandleFunc("/spots", func(w http.ResponseWriter, r *http.Request) {
		at, err := time.Parse(time.RFC3339, r.URL.Query().Get("at"))
		if err != nil {
			http.Error(w, "bad 'at'", http.StatusBadRequest)
			return
		}
		var out []spotDTO
		for i := range result.Spots {
			sa := &result.Spots[i]
			dto := spotDTO{
				Lat: sa.Spot.Pos.Lat, Lon: sa.Spot.Pos.Lon,
				Zone: sa.Spot.Zone.String(), Context: sa.LabelAt(grid, at).String(),
			}
			if lm, d, ok := city.NearestLandmark(sa.Spot.Pos); ok && d < 50 {
				dto.Landmark = lm.Name
			}
			out = append(out, dto)
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			log.Print(err)
		}
	})
	mux.Handle("/monitors", monSvc)
	mux.Handle("/monitors/", monSvc)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	log.Printf("serving on %s", base)

	// Frontend: query the evening rush like the web UI's map view.
	at := grid.Start.Add(18 * time.Hour).Format(time.RFC3339)
	var spots []spotDTO
	getJSON(base+"/spots?at="+at, &spots)
	byContext := map[string][]spotDTO{}
	for _, s := range spots {
		byContext[s.Context] = append(byContext[s.Context], s)
	}
	fmt.Printf("\n18:00 city map (%d spots):\n", len(spots))
	var contexts []string
	for c := range byContext {
		contexts = append(contexts, c)
	}
	sort.Strings(contexts)
	for _, c := range contexts {
		fmt.Printf("  %-12s %d spots", c, len(byContext[c]))
		if len(byContext[c]) > 0 && byContext[c][0].Landmark != "" {
			fmt.Printf("  (e.g. %s)", byContext[c][0].Landmark)
		}
		fmt.Println()
	}

	// Frontend: the busiest spot's monitor series around the rush.
	var series []monitor.Sample
	from := grid.Start.Add(18 * time.Hour)
	getJSON(fmt.Sprintf("%s/monitors/busiest/series?from=%s&to=%s", base,
		from.Format(time.RFC3339), from.Add(10*time.Minute).Format(time.RFC3339)), &series)
	fmt.Println("\nbusiest-spot monitor, 18:00-18:10 (vehicles in stand area):")
	for _, s := range series {
		fmt.Printf("  %s  %d\n", s.Time.Format("15:04"), s.Count)
	}

	if err := srv.Close(); err != nil {
		log.Print(err)
	}
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s -> %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
