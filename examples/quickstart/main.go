// Quickstart: the smallest end-to-end use of the library.
//
// It simulates a compact city for one day, cleans the raw MDT feed, runs
// the two-tier queue analytic engine, and prints the detected queue spots
// with their queue-context mix.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/sim"
)

func main() {
	// 1. A synthetic city and one simulated day of event-driven MDT logs
	//    (the stand-in for the operator's 15 000-taxi feed).
	city := citymap.Generate(7, 0.15)
	day := sim.Run(sim.Config{Seed: 7, City: city, InjectFaults: true})
	fmt.Printf("simulated %d MDT records from %d taxis\n",
		len(day.Records), day.Config.NumTaxis)

	// 2. §6.1.1 preprocessing: drop duplicates, improper states and GPS
	//    outliers.
	records, stats := clean.Clean(day.Records, clean.Config{ValidFrame: citymap.Island})
	fmt.Println(stats)

	// 3. The two-tier engine: PEA -> DBSCAN spot detection -> WTE ->
	//    5-tuple features -> QCD context labels.
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 40}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	result, err := engine.Analyze(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d slow pickup events, detected %d queue spots\n\n",
		len(result.Pickups), len(result.Spots))

	// 4. Inspect the busiest spots.
	for i, sa := range result.Spots {
		if i >= 5 {
			break
		}
		counts := map[core.QueueType]int{}
		for _, l := range sa.Labels {
			counts[l]++
		}
		name := "?"
		if lm, d, ok := city.NearestLandmark(sa.Spot.Pos); ok && d < 50 {
			name = lm.Name
		}
		fmt.Printf("%d. %-22s %-8s %4d pickups  C1=%-2d C2=%-2d C3=%-2d C4=%-2d unid=%d\n",
			i+1, name, sa.Spot.Zone, sa.Spot.PickupCount,
			counts[core.C1], counts[core.C2], counts[core.C3], counts[core.C4],
			counts[core.Unidentified])
	}

	// 5. Drill into one spot's evening.
	if len(result.Spots) > 0 {
		sa := result.Spots[0]
		grid := result.Config.Grid
		fmt.Println("\nbusiest spot, evening slots:")
		for j := 34; j < 44 && j < len(sa.Labels); j++ {
			from, to := grid.Bounds(j)
			fmt.Printf("  %s-%s  %-12v (L̄=%.1f)\n",
				from.Format("15:04"), to.Format("15:04"), sa.Labels[j], sa.Features[j].QLen)
		}
	}
}
