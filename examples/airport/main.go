// Airport: a taxi-queue-heavy scenario with independent validation.
//
// The airport is the city's taxi-rich extreme: a standing taxi queue most
// of the day (C3), flipping to C1 when passenger banks land. This example
// validates the engine's labels against two independent data sources the
// paper uses in §6.2.2:
//
//   - the vehicle monitor system (polygon vehicle counts every minute), and
//   - the booking backend's failed-booking ledger,
//
// and cross-checks the Little's-Law queue-length estimate L̄ against the
// simulator's ground-truth queue length.
//
//	go run ./examples/airport
package main

import (
	"fmt"
	"log"
	"math"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/monitor"
	"taxiqueue/internal/sim"
)

func main() {
	city := citymap.Generate(23, 0.2)
	day := sim.Run(sim.Config{Seed: 23, City: city, InjectFaults: true})
	records, _ := clean.Clean(day.Records, clean.Config{ValidFrame: citymap.Island})

	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 40}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	result, err := engine.Analyze(records)
	if err != nil {
		log.Fatal(err)
	}

	// Find the busiest detected airport spot and its ground truth.
	var spot *core.SpotAnalysis
	var truth *sim.SpotTruth
	for i := range result.Spots {
		lm, d, ok := city.NearestLandmark(result.Spots[i].Spot.Pos)
		if ok && d < 30 && lm.Category == citymap.AirportFerry {
			spot = &result.Spots[i]
			for j, cand := range city.Landmarks {
				if cand.Name == lm.Name {
					truth = day.Truth.Spots[j]
				}
			}
			break
		}
	}
	if spot == nil {
		log.Fatal("no airport spot detected; try another seed")
	}
	fmt.Printf("airport spot %v: %d pickups\n\n", spot.Spot.Pos, spot.Spot.PickupCount)

	// Replay the ground-truth stand occupancy into the monitor component,
	// as the deployed camera system would.
	counter := monitor.NewAreaCounter("airport", geo.CirclePolygon(spot.Spot.Pos, 40, 12))
	for _, s := range truth.TaxiQueueLog {
		if err := counter.Observe(s.Time, s.Len); err != nil {
			log.Fatal(err)
		}
	}

	grid := result.Config.Grid
	fmt.Println("slot    ctx  L̄(Little)  monitor-avg  failed-bookings")
	fmt.Println("------------------------------------------------------")
	var littleErr, littleN float64
	for j := 12; j < 46; j += 2 {
		from, to := grid.Bounds(j)
		f := spot.Features[j]
		mon := counter.Average(from, to)
		failed := truth.FailedBookingCount(from, to)
		fmt.Printf("%s   %-4v %8.1f %12.1f %12d\n",
			from.Format("15:04"), spot.Labels[j], f.QLen, mon, failed)
		if mon > 0 {
			littleErr += math.Abs(f.QLen - mon)
			littleN++
		}
	}
	if littleN > 0 {
		fmt.Printf("\nmean |L̄ - monitor| = %.2f taxis over %d slots\n",
			littleErr/littleN, int(littleN))
	}

	// Aggregate the §6.2.2 validation per label.
	taxiAvg := map[core.QueueType][]float64{}
	for j := range spot.Labels {
		from, to := grid.Bounds(j)
		taxiAvg[spot.Labels[j]] = append(taxiAvg[spot.Labels[j]], counter.Average(from, to))
	}
	fmt.Println("\nmonitored taxi count by context (paper Table 8: C1 6.13, C3 3.26, C4 0.32):")
	for _, q := range []core.QueueType{core.C1, core.C2, core.C3, core.C4, core.Unidentified} {
		vals := taxiAvg[q]
		if len(vals) == 0 {
			continue
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		fmt.Printf("  %-12v %5.2f (%d slots)\n", q, sum/float64(len(vals)), len(vals))
	}
}
